#include "util/stats.hh"

#include <cmath>

#include "util/logging.hh"

namespace lvplib
{

double
pct(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0.0
                    : 100.0 * static_cast<double>(num) /
                          static_cast<double>(den);
}

double
ratio(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0.0
                    : static_cast<double>(num) / static_cast<double>(den);
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    constexpr double eps = 1e-9;
    double logsum = 0.0;
    for (double x : xs)
        logsum += std::log(x > eps ? x : eps);
    return std::exp(logsum / static_cast<double>(xs.size()));
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

Histogram::Histogram(std::size_t buckets) : counts_(buckets, 0)
{
    lvp_assert(buckets > 0);
}

void
Histogram::record(std::uint64_t v)
{
    record(v, 1);
}

void
Histogram::record(std::uint64_t v, std::uint64_t count)
{
    if (v < counts_.size())
        counts_[v] += count;
    else
        overflow_ += count;
    total_ += count;
    sum_ += static_cast<double>(v) * static_cast<double>(count);
}

std::uint64_t
Histogram::bucket(std::size_t b) const
{
    lvp_assert(b < counts_.size());
    return counts_[b];
}

double
Histogram::bucketPct(std::size_t b) const
{
    return pct(bucket(b), total_);
}

double
Histogram::overflowPct() const
{
    return pct(overflow_, total_);
}

double
Histogram::sampleMean() const
{
    return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

void
Histogram::merge(const Histogram &other)
{
    lvp_assert(other.counts_.size() == counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    overflow_ += other.overflow_;
    total_ += other.total_;
    sum_ += other.sum_;
}

void
Histogram::clear()
{
    for (auto &c : counts_)
        c = 0;
    overflow_ = 0;
    total_ = 0;
    sum_ = 0.0;
}

} // namespace lvplib

/**
 * @file
 * A small deterministic pseudo-random number generator (xorshift64*)
 * used by workload input generators and property tests. Determinism
 * matters: every experiment must be exactly reproducible from its seed.
 */

#ifndef LVPLIB_UTIL_RNG_HH
#define LVPLIB_UTIL_RNG_HH

#include <cstdint>

namespace lvplib
{

/** xorshift64* generator with a fixed default seed. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw: true with probability num/den. */
    bool
    chance(std::uint64_t num, std::uint64_t den)
    {
        return below(den) < num;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t state_;
};

} // namespace lvplib

#endif // LVPLIB_UTIL_RNG_HH

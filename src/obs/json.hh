/**
 * @file
 * Minimal, dependency-free JSON support for the observability
 * subsystem: a streaming writer (used by the metrics and timeline
 * exporters) and a small value-tree parser (used by the
 * golden-baseline checker to read dumps back).
 *
 * Policy decisions, shared by every exporter:
 *  - strings are UTF-8 passed through verbatim; only '"', '\\', and
 *    control characters below 0x20 are escaped;
 *  - doubles are printed with std::to_chars, the shortest
 *    representation that round-trips exactly, so re-exporting a
 *    parsed dump is byte-stable;
 *  - non-finite doubles (NaN, +/-Inf) have no JSON encoding and are
 *    emitted as null — callers that can observe them (the gauge
 *    exporter) add a "<name>_invalid" sibling counter instead of
 *    silently dropping the information.
 */

#ifndef LVPLIB_OBS_JSON_HH
#define LVPLIB_OBS_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace lvplib::obs
{

/** Escape @p s for inclusion inside a JSON string literal. */
std::string jsonEscape(std::string_view s);

/** Shortest round-trip text for @p v; "null" when not finite. */
std::string jsonNumber(double v);

/**
 * A streaming JSON writer with automatic commas and two-space
 * indentation. Usage errors (a value where a key is required, etc.)
 * are lvp_assert failures — the writers in this repo emit fixed
 * shapes, so any violation is a programming bug.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit the key of the next object member. */
    void key(std::string_view name);

    void value(std::string_view s);
    void value(const char *s) { value(std::string_view(s)); }
    void value(bool b);
    void value(double d); ///< non-finite emits null
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
    void null();

    /** key() + value() in one call. */
    template <typename T>
    void
    member(std::string_view name, T v)
    {
        key(name);
        value(v);
    }

    /** True once every container has been closed. */
    bool complete() const { return stack_.empty() && emitted_; }

  private:
    enum class Ctx
    {
        Object,
        Array
    };

    void separate(bool isKey);
    void indent();

    std::ostream &os_;
    struct Level
    {
        Ctx ctx;
        bool first = true;
        bool keyPending = false;
    };
    std::vector<Level> stack_;
    bool emitted_ = false;
};

/**
 * A parsed JSON value. Objects preserve no duplicate keys (the last
 * one wins) and numbers are stored as double — sufficient for the
 * metric dumps this repo produces (counters stay far below 2^53).
 */
class JsonValue
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    JsonValue() = default;

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** 0 / false / "" when the type doesn't match. */
    double asDouble() const { return isNumber() ? num_ : 0.0; }
    bool asBool() const { return type_ == Type::Bool && num_ != 0.0; }
    const std::string &asString() const { return str_; }

    const std::vector<JsonValue> &items() const { return items_; }

    /** Object member by key; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /** Object members in original insertion order. */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }

    static JsonValue makeNull();
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double d);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue
    makeObject(std::vector<std::pair<std::string, JsonValue>> members);

  private:
    Type type_ = Type::Null;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/**
 * Parse a complete JSON document. Trailing garbage, unterminated
 * containers, and malformed literals are all errors.
 * @return std::nullopt plus a message (with byte offset) in @p error.
 */
std::optional<JsonValue> parseJson(std::string_view text,
                                   std::string &error);

} // namespace lvplib::obs

#endif // LVPLIB_OBS_JSON_HH

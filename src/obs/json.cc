#include "obs/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace lvplib::obs
{

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                // UTF-8 multi-byte sequences pass through verbatim.
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof buf, v);
    lvp_assert(res.ec == std::errc());
    return std::string(buf, res.ptr);
}

void
JsonWriter::indent()
{
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::separate(bool isKey)
{
    lvp_assert(!(stack_.empty() && emitted_),
               "JSON document already complete");
    if (stack_.empty())
        return; // first (and only) top-level value
    Level &top = stack_.back();
    if (top.ctx == Ctx::Object) {
        if (isKey) {
            lvp_assert(!top.keyPending, "two keys in a row");
            if (!top.first)
                os_ << ',';
            indent();
            top.first = false;
            top.keyPending = true;
        } else {
            lvp_assert(top.keyPending,
                       "object member value without a key");
            top.keyPending = false;
        }
    } else {
        lvp_assert(!isKey, "key inside an array");
        if (!top.first)
            os_ << ',';
        indent();
        top.first = false;
    }
}

void
JsonWriter::beginObject()
{
    separate(false);
    os_ << '{';
    stack_.push_back({Ctx::Object});
}

void
JsonWriter::endObject()
{
    lvp_assert(!stack_.empty() && stack_.back().ctx == Ctx::Object &&
               !stack_.back().keyPending);
    bool empty = stack_.back().first;
    stack_.pop_back();
    if (!empty) {
        os_ << '\n';
        for (std::size_t i = 0; i < stack_.size(); ++i)
            os_ << "  ";
    }
    os_ << '}';
    emitted_ = true;
}

void
JsonWriter::beginArray()
{
    separate(false);
    os_ << '[';
    stack_.push_back({Ctx::Array});
}

void
JsonWriter::endArray()
{
    lvp_assert(!stack_.empty() && stack_.back().ctx == Ctx::Array);
    bool empty = stack_.back().first;
    stack_.pop_back();
    if (!empty) {
        os_ << '\n';
        for (std::size_t i = 0; i < stack_.size(); ++i)
            os_ << "  ";
    }
    os_ << ']';
    emitted_ = true;
}

void
JsonWriter::key(std::string_view name)
{
    separate(true);
    os_ << '"' << jsonEscape(name) << "\": ";
}

void
JsonWriter::value(std::string_view s)
{
    separate(false);
    os_ << '"' << jsonEscape(s) << '"';
    emitted_ = true;
}

void
JsonWriter::value(bool b)
{
    separate(false);
    os_ << (b ? "true" : "false");
    emitted_ = true;
}

void
JsonWriter::value(double d)
{
    separate(false);
    os_ << jsonNumber(d);
    emitted_ = true;
}

void
JsonWriter::value(std::uint64_t v)
{
    separate(false);
    os_ << v;
    emitted_ = true;
}

void
JsonWriter::value(std::int64_t v)
{
    separate(false);
    os_ << v;
    emitted_ = true;
}

void
JsonWriter::null()
{
    separate(false);
    os_ << "null";
    emitted_ = true;
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (auto it = members_.rbegin(); it != members_.rend(); ++it)
        if (it->first == key)
            return &it->second;
    return nullptr;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue();
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.type_ = Type::Bool;
    v.num_ = b ? 1.0 : 0.0;
    return v;
}

JsonValue
JsonValue::makeNumber(double d)
{
    JsonValue v;
    v.type_ = Type::Number;
    v.num_ = d;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.type_ = Type::String;
    v.str_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue v;
    v.type_ = Type::Array;
    v.items_ = std::move(items);
    return v;
}

JsonValue
JsonValue::makeObject(
    std::vector<std::pair<std::string, JsonValue>> members)
{
    JsonValue v;
    v.type_ = Type::Object;
    v.members_ = std::move(members);
    return v;
}

namespace
{

/** Recursive-descent parser over a string_view. */
class Parser
{
  public:
    Parser(std::string_view text, std::string &error)
        : text_(text), error_(error)
    {}

    std::optional<JsonValue>
    parse()
    {
        skipWs();
        auto v = parseValue(0);
        if (!v)
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters after JSON document");
            return std::nullopt;
        }
        return v;
    }

  private:
    static constexpr int kMaxDepth = 64;

    void
    fail(const std::string &what)
    {
        if (error_.empty())
            error_ = what + " at byte " + std::to_string(pos_);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) == lit) {
            pos_ += lit.size();
            return true;
        }
        return false;
    }

    std::optional<JsonValue>
    parseValue(int depth)
    {
        if (depth > kMaxDepth) {
            fail("nesting too deep");
            return std::nullopt;
        }
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return std::nullopt;
        }
        char c = text_[pos_];
        if (c == '{')
            return parseObject(depth);
        if (c == '[')
            return parseArray(depth);
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return std::nullopt;
            return JsonValue::makeString(std::move(s));
        }
        if (literal("true"))
            return JsonValue::makeBool(true);
        if (literal("false"))
            return JsonValue::makeBool(false);
        if (literal("null"))
            return JsonValue::makeNull();
        return parseNumber();
    }

    std::optional<JsonValue>
    parseNumber()
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start) {
            fail("invalid value");
            return std::nullopt;
        }
        double d = 0;
        auto res = std::from_chars(text_.data() + start,
                                   text_.data() + pos_, d);
        if (res.ec != std::errc() ||
            res.ptr != text_.data() + pos_) {
            pos_ = start;
            fail("malformed number");
            return std::nullopt;
        }
        return JsonValue::makeNumber(d);
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"')) {
            fail("expected '\"'");
            return false;
        }
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                if (static_cast<unsigned char>(c) < 0x20) {
                    --pos_;
                    fail("unescaped control character in string");
                    return false;
                }
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  if (pos_ + 4 > text_.size()) {
                      fail("truncated \\u escape");
                      return false;
                  }
                  unsigned cp = 0;
                  auto res = std::from_chars(
                      text_.data() + pos_, text_.data() + pos_ + 4,
                      cp, 16);
                  if (res.ec != std::errc() ||
                      res.ptr != text_.data() + pos_ + 4) {
                      fail("malformed \\u escape");
                      return false;
                  }
                  pos_ += 4;
                  // Encode the code point as UTF-8. Surrogate pairs
                  // are not combined — the exporters never emit them
                  // (only control characters are \u-escaped).
                  if (cp < 0x80) {
                      out += static_cast<char>(cp);
                  } else if (cp < 0x800) {
                      out += static_cast<char>(0xC0 | (cp >> 6));
                      out += static_cast<char>(0x80 | (cp & 0x3F));
                  } else {
                      out += static_cast<char>(0xE0 | (cp >> 12));
                      out += static_cast<char>(0x80 |
                                               ((cp >> 6) & 0x3F));
                      out += static_cast<char>(0x80 | (cp & 0x3F));
                  }
                  break;
              }
              default:
                pos_ -= 2;
                fail("unknown escape sequence");
                return false;
            }
        }
        fail("unterminated string");
        return false;
    }

    std::optional<JsonValue>
    parseArray(int depth)
    {
        consume('[');
        std::vector<JsonValue> items;
        skipWs();
        if (consume(']'))
            return JsonValue::makeArray(std::move(items));
        while (true) {
            skipWs();
            auto v = parseValue(depth + 1);
            if (!v)
                return std::nullopt;
            items.push_back(std::move(*v));
            skipWs();
            if (consume(']'))
                return JsonValue::makeArray(std::move(items));
            if (!consume(',')) {
                fail("expected ',' or ']' in array");
                return std::nullopt;
            }
        }
    }

    std::optional<JsonValue>
    parseObject(int depth)
    {
        consume('{');
        std::vector<std::pair<std::string, JsonValue>> members;
        skipWs();
        if (consume('}'))
            return JsonValue::makeObject(std::move(members));
        while (true) {
            skipWs();
            std::string k;
            if (!parseString(k))
                return std::nullopt;
            skipWs();
            if (!consume(':')) {
                fail("expected ':' after object key");
                return std::nullopt;
            }
            skipWs();
            auto v = parseValue(depth + 1);
            if (!v)
                return std::nullopt;
            members.emplace_back(std::move(k), std::move(*v));
            skipWs();
            if (consume('}'))
                return JsonValue::makeObject(std::move(members));
            if (!consume(',')) {
                fail("expected ',' or '}' in object");
                return std::nullopt;
            }
        }
    }

    std::string_view text_;
    std::string &error_;
    std::size_t pos_ = 0;
};

} // namespace

std::optional<JsonValue>
parseJson(std::string_view text, std::string &error)
{
    error.clear();
    Parser p(text, error);
    auto v = p.parse();
    if (!v && error.empty())
        error = "malformed JSON";
    return v;
}

} // namespace lvplib::obs

#include "obs/metrics.hh"

#include <cmath>

#include "obs/json.hh"
#include "util/logging.hh"

namespace lvplib::obs
{

void
Gauge::set(double v)
{
    if (!std::isfinite(v))
        invalid_.fetch_add(1, std::memory_order_relaxed);
    v_.store(v, std::memory_order_relaxed);
}

std::string
metricPart(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c >= 'A' && c <= 'Z')
            out += static_cast<char>(c - 'A' + 'a');
        else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                 c == '_')
            out += c;
        else if (c == '+')
            out += "plus";
        else
            out += '_';
    }
    return out;
}

std::string
metricKey(std::initializer_list<std::string_view> parts)
{
    std::string out;
    for (std::string_view p : parts) {
        if (!out.empty())
            out += '.';
        out += metricPart(p);
    }
    return out;
}

MetricRegistry::~MetricRegistry() = default;

MetricRegistry &
MetricRegistry::process()
{
    static MetricRegistry registry;
    return registry;
}

MetricRegistry &
metrics()
{
    return MetricRegistry::process();
}

Counter &
MetricRegistry::counter(const std::string &name, bool isVolatile)
{
    std::lock_guard<std::mutex> lock(m_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        Entry e{Kind::Counter, isVolatile,
                std::make_unique<Counter>(), nullptr, nullptr};
        it = entries_.emplace(name, std::move(e)).first;
    }
    lvp_assert(it->second.kind == Kind::Counter,
               "metric '%s' registered with a different type",
               name.c_str());
    return *it->second.counter;
}

Gauge &
MetricRegistry::gauge(const std::string &name, bool isVolatile)
{
    std::lock_guard<std::mutex> lock(m_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        Entry e{Kind::Gauge, isVolatile, nullptr,
                std::make_unique<Gauge>(), nullptr};
        it = entries_.emplace(name, std::move(e)).first;
    }
    lvp_assert(it->second.kind == Kind::Gauge,
               "metric '%s' registered with a different type",
               name.c_str());
    return *it->second.gauge;
}

Distribution &
MetricRegistry::distribution(const std::string &name,
                             std::size_t buckets, bool isVolatile)
{
    std::lock_guard<std::mutex> lock(m_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        Entry e{Kind::Distribution, isVolatile, nullptr, nullptr,
                std::make_unique<Distribution>(buckets)};
        it = entries_.emplace(name, std::move(e)).first;
    }
    lvp_assert(it->second.kind == Kind::Distribution,
               "metric '%s' registered with a different type",
               name.c_str());
    return *it->second.dist;
}

std::size_t
MetricRegistry::size() const
{
    std::lock_guard<std::mutex> lock(m_);
    return entries_.size();
}

void
MetricRegistry::writeJson(JsonWriter &w) const
{
    std::lock_guard<std::mutex> lock(m_);
    w.beginObject();
    // std::map iterates in name order: the dump (and therefore the
    // committed golden baseline) is byte-stable across runs.
    for (const auto &[name, e] : entries_) {
        w.key(name);
        w.beginObject();
        switch (e.kind) {
          case Kind::Counter:
            w.member("type", "counter");
            w.member("value", e.counter->value());
            break;
          case Kind::Gauge: {
              w.member("type", "gauge");
              double v = e.gauge->value();
              w.key("value");
              if (std::isfinite(v))
                  w.value(v);
              else
                  w.null(); // policy: non-finite has no JSON number
              break;
          }
          case Kind::Distribution: {
              Histogram h = e.dist->snapshot();
              w.member("type", "distribution");
              w.member("count", h.total());
              w.member("mean", h.sampleMean());
              w.member("p50",
                       static_cast<std::uint64_t>(h.quantile(0.50)));
              w.member("p90",
                       static_cast<std::uint64_t>(h.quantile(0.90)));
              w.member("p99",
                       static_cast<std::uint64_t>(h.quantile(0.99)));
              w.key("buckets");
              w.beginArray();
              for (Histogram::BucketEntry b : h)
                  w.value(b.count);
              w.endArray();
              w.member("overflow", h.overflow());
              break;
          }
        }
        if (e.isVolatile)
            w.member("volatile", true);
        w.endObject();
        // The *_invalid sibling makes a swallowed NaN/Inf visible to
        // both humans and the checker.
        if (e.kind == Kind::Gauge && e.gauge->invalidSets() > 0) {
            w.key(name + "_invalid");
            w.beginObject();
            w.member("type", "counter");
            w.member("value", e.gauge->invalidSets());
            if (e.isVolatile)
                w.member("volatile", true);
            w.endObject();
        }
    }
    w.endObject();
}

} // namespace lvplib::obs

/**
 * @file
 * A run-timeline recorder emitting Chrome trace_event JSON
 * (the "JSON Array Format" consumed by chrome://tracing and
 * Perfetto). Experiment phases — trace generation, cache replay, LVP
 * simulation, the timing models — record complete ("ph":"X") spans
 * with microsecond timestamps relative to process start.
 *
 * Recording is off by default and costs one relaxed atomic load per
 * span when disabled; `lvpbench --timeline-out FILE` enables it for
 * the run. All methods are thread-safe; spans recorded from pool
 * workers carry a small stable per-thread tid so the trace viewer
 * lays them out in worker rows.
 */

#ifndef LVPLIB_OBS_TIMELINE_HH
#define LVPLIB_OBS_TIMELINE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

namespace lvplib::obs
{

/** Span recorder; see file comment. */
class Timeline
{
  public:
    Timeline() = default;
    Timeline(const Timeline &) = delete;
    Timeline &operator=(const Timeline &) = delete;

    /** The process-wide timeline the subsystems record into. */
    static Timeline &process();

    void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Microseconds since this Timeline was constructed. */
    std::uint64_t nowUs() const;

    /**
     * Record one complete span. No-op when disabled. @p cat groups
     * spans in the viewer ("experiment", "trace", "sim").
     */
    void recordSpan(std::string name, std::string cat,
                    std::uint64_t startUs, std::uint64_t durUs);

    /** Number of spans recorded so far. */
    std::size_t spanCount() const;

    /** Drop all recorded spans (tests). */
    void clear();

    /**
     * Write the Chrome trace_event document:
     * {"traceEvents": [...], "displayTimeUnit": "ms"}.
     */
    void writeJson(std::ostream &os) const;

    /**
     * RAII span: stamps the start on construction and records on
     * destruction when the timeline is enabled. Cheap when disabled
     * (no clock read).
     */
    class Scope
    {
      public:
        Scope(std::string name, std::string cat,
              Timeline &tl = Timeline::process());
        ~Scope();

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        Timeline &tl_;
        std::string name_;
        std::string cat_;
        std::uint64_t startUs_ = 0;
        bool active_ = false;
    };

  private:
    struct Span
    {
        std::string name;
        std::string cat;
        std::uint64_t startUs;
        std::uint64_t durUs;
        int tid;
    };

    int threadId() const;

    std::atomic<bool> enabled_{false};
    const std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();
    mutable std::mutex m_;
    std::vector<Span> spans_;
    mutable std::map<std::thread::id, int> tids_;
};

} // namespace lvplib::obs

#endif // LVPLIB_OBS_TIMELINE_HH

/**
 * @file
 * The golden-baseline regression checker: diff a metrics dump
 * against a committed baseline (bench/golden/metrics.json) and
 * report every numeric drift by name. Backing for
 * `lvpbench --check BASELINE.json [--rel-tol X]`, which turns every
 * reproduced table and figure of the paper into an enforced
 * regression test.
 *
 * Rules:
 *  - both documents must carry the same schema tag
 *    (obs::kMetricsSchema); anything else is a fatal error, not a
 *    drift;
 *  - "context" members present in the baseline (scale,
 *    max_instructions) must match the run exactly — every reproduced
 *    number depends on them, so a mismatch is reported as drift on
 *    "context.<key>" rather than as hundreds of follow-on drifts;
 *  - metrics flagged volatile in the baseline (cache effectiveness,
 *    pool occupancy, wall times) are skipped;
 *  - every other baseline metric must exist in the run with the same
 *    type, and every numeric field must agree within the relative
 *    tolerance (|a-b| <= relTol * max(|a|,|b|)); null (an invalid
 *    gauge) only matches null;
 *  - metrics present only in the current run are fine — new
 *    instruments don't invalidate old baselines.
 */

#ifndef LVPLIB_OBS_CHECK_HH
#define LVPLIB_OBS_CHECK_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace lvplib::obs
{

/** One divergence between baseline and current run. */
struct MetricDrift
{
    std::string name;   ///< metric (or "context.<key>" / field path)
    std::string reason; ///< human-readable: what differed and by how much
};

/** Outcome of a baseline comparison. */
struct CheckReport
{
    std::string error; ///< fatal problem (schema/shape); empty if none
    std::vector<MetricDrift> drifts;
    std::size_t compared = 0;        ///< baseline metrics diffed
    std::size_t skippedVolatile = 0; ///< baseline metrics skipped

    bool
    ok() const
    {
        return error.empty() && drifts.empty();
    }
};

/**
 * Compare @p current against @p baseline under @p relTol.
 * Both values are parsed metrics dumps (see parseJson).
 */
CheckReport checkMetrics(const JsonValue &baseline,
                         const JsonValue &current, double relTol);

/** Print @p report for humans: one line per drift, then a summary. */
void printCheckReport(std::ostream &os, const CheckReport &report,
                      const std::string &baselinePath, double relTol);

} // namespace lvplib::obs

#endif // LVPLIB_OBS_CHECK_HH

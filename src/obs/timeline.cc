#include "obs/timeline.hh"

#include "obs/json.hh"

namespace lvplib::obs
{

Timeline &
Timeline::process()
{
    static Timeline tl;
    return tl;
}

std::uint64_t
Timeline::nowUs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

int
Timeline::threadId() const
{
    // Caller holds m_.
    auto id = std::this_thread::get_id();
    auto it = tids_.find(id);
    if (it == tids_.end())
        it = tids_.emplace(id, static_cast<int>(tids_.size()) + 1)
                 .first;
    return it->second;
}

void
Timeline::recordSpan(std::string name, std::string cat,
                     std::uint64_t startUs, std::uint64_t durUs)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(m_);
    spans_.push_back({std::move(name), std::move(cat), startUs, durUs,
                      threadId()});
}

std::size_t
Timeline::spanCount() const
{
    std::lock_guard<std::mutex> lock(m_);
    return spans_.size();
}

void
Timeline::clear()
{
    std::lock_guard<std::mutex> lock(m_);
    spans_.clear();
}

void
Timeline::writeJson(std::ostream &os) const
{
    std::vector<Span> spans;
    {
        std::lock_guard<std::mutex> lock(m_);
        spans = spans_;
    }
    JsonWriter w(os);
    w.beginObject();
    w.key("traceEvents");
    w.beginArray();
    for (const auto &s : spans) {
        w.beginObject();
        w.member("name", s.name);
        w.member("cat", s.cat);
        w.member("ph", "X");
        w.member("ts", s.startUs);
        w.member("dur", s.durUs);
        w.member("pid", 1);
        w.member("tid", s.tid);
        w.endObject();
    }
    w.endArray();
    w.member("displayTimeUnit", "ms");
    w.endObject();
    os << '\n';
}

Timeline::Scope::Scope(std::string name, std::string cat, Timeline &tl)
    : tl_(tl), name_(std::move(name)), cat_(std::move(cat))
{
    if (tl_.enabled()) {
        active_ = true;
        startUs_ = tl_.nowUs();
    }
}

Timeline::Scope::~Scope()
{
    if (active_)
        tl_.recordSpan(std::move(name_), std::move(cat_), startUs_,
                       tl_.nowUs() - startUs_);
}

} // namespace lvplib::obs

/**
 * @file
 * The structured-metrics spine of lvplib: a thread-safe
 * MetricRegistry holding typed instruments that every subsystem
 * publishes into, and a versioned JSON export that turns the paper's
 * reproduced numbers into machine-readable, regression-checkable
 * data.
 *
 * Instruments:
 *  - Counter: monotonically increasing uint64 (cache hits, tasks
 *    executed). Lock-free.
 *  - Gauge: last-written double (every experiment headline number —
 *    a locality percentage, an LCT hit rate, a speedup, a GM row).
 *    Setting a gauge is idempotent, so experiment runners may be
 *    re-run in one process without skewing the export. Non-finite
 *    writes are counted and exported as null with a
 *    "<name>_invalid" sibling counter.
 *  - Distribution: a mutex-guarded util::Histogram (per-model IPC,
 *    queue depths); exported with count/mean/p50/p90/p99 plus the
 *    raw buckets.
 *
 * Naming convention (enforced by metricKey()): dot-separated
 * lowercase components, "subsystem.metric" for operational metrics
 * (runcache.hits, taskpool.submitted) and
 * "experiment.row.column" for reproduced paper numbers
 * (fig1.grep.alpha_d1, fig6ppc.gm.simple). metricPart() maps '+' to
 * "plus" and any other non-[a-z0-9_] byte to '_', so machine and
 * configuration display names ("620+", "Simple") sanitize cleanly.
 *
 * Instruments registered volatile are operational telemetry whose
 * values legitimately vary run-to-run (cache effectiveness, pool
 * occupancy, wall times); the golden-baseline checker (obs/check.hh)
 * skips them. Experiment gauges default to non-volatile: they are
 * pure functions of (workload, scale, configuration) and any drift
 * is a regression.
 *
 * References returned by the registry stay valid for the registry's
 * lifetime; hot paths should cache them instead of re-looking-up by
 * name.
 */

#ifndef LVPLIB_OBS_METRICS_HH
#define LVPLIB_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "util/stats.hh"

namespace lvplib::obs
{

class JsonWriter;

/** Version tag written into (and required of) every metrics dump. */
inline constexpr const char *kMetricsSchema = "lvplib-metrics-v1";

/** A monotonically increasing event count. */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** A last-value-wins measurement. */
class Gauge
{
  public:
    /** Record @p v. Non-finite values are kept (exported as null)
     *  and counted in invalidSets(). */
    void set(double v);

    double
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

    /** How many times set() saw NaN or +/-Inf. */
    std::uint64_t
    invalidSets() const
    {
        return invalid_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> v_{0.0};
    std::atomic<std::uint64_t> invalid_{0};
};

/** A histogram-backed sample distribution. */
class Distribution
{
  public:
    explicit Distribution(std::size_t buckets) : h_(buckets) {}

    void
    record(std::uint64_t v, std::uint64_t count = 1)
    {
        std::lock_guard<std::mutex> lock(m_);
        h_.record(v, count);
    }

    /** A consistent copy of the underlying histogram. */
    Histogram
    snapshot() const
    {
        std::lock_guard<std::mutex> lock(m_);
        return h_;
    }

  private:
    mutable std::mutex m_;
    Histogram h_;
};

/** Sanitize one dotted-name component; see the naming convention. */
std::string metricPart(std::string_view s);

/** Join sanitized components with '.': metricKey({"fig1", w.name,
 *  "alpha_d1"}). */
std::string metricKey(std::initializer_list<std::string_view> parts);

/**
 * The instrument directory. Registration is get-or-create keyed on
 * the full metric name; re-registering an existing name with a
 * different instrument type is a programming error (lvp_panic).
 * All methods are thread-safe.
 */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;
    ~MetricRegistry();

    /** The process-wide registry every subsystem publishes into. */
    static MetricRegistry &process();

    Counter &counter(const std::string &name, bool isVolatile = true);
    Gauge &gauge(const std::string &name, bool isVolatile = false);
    Distribution &distribution(const std::string &name,
                               std::size_t buckets,
                               bool isVolatile = true);

    /** Number of registered instruments. */
    std::size_t size() const;

    /**
     * Write the registry as one JSON object value, instruments in
     * name order: { "name": {"type": ..., "value": ...}, ... }.
     * The caller owns the surrounding envelope (schema, context).
     * Non-finite gauges emit null plus a "<name>_invalid" sibling.
     */
    void writeJson(JsonWriter &w) const;

  private:
    enum class Kind
    {
        Counter,
        Gauge,
        Distribution
    };

    struct Entry
    {
        Kind kind;
        bool isVolatile;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Distribution> dist;
    };

    mutable std::mutex m_;
    std::map<std::string, Entry> entries_;
};

/** Shorthand for MetricRegistry::process(). */
MetricRegistry &metrics();

} // namespace lvplib::obs

#endif // LVPLIB_OBS_METRICS_HH

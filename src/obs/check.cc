#include "obs/check.hh"

#include <cmath>

#include "obs/metrics.hh"

namespace lvplib::obs
{

namespace
{

bool
withinTol(double a, double b, double relTol)
{
    if (a == b)
        return true;
    double scale = std::max(std::fabs(a), std::fabs(b));
    return std::fabs(a - b) <= relTol * scale;
}

std::string
fmtNum(double v)
{
    return jsonNumber(v);
}

/**
 * Diff one numeric-or-null field of a metric entry. @p path is the
 * drift label ("fig1.grep.alpha_d1" or "fig7....latency.p90").
 */
void
diffField(const std::string &path, const JsonValue *base,
          const JsonValue *cur, double relTol, CheckReport &report)
{
    if (!base)
        return; // field absent from the baseline: nothing to enforce
    if (!cur) {
        report.drifts.push_back(
            {path, "field missing from current run"});
        return;
    }
    if (base->isNull() || cur->isNull()) {
        if (base->isNull() != cur->isNull())
            report.drifts.push_back(
                {path, std::string("baseline is ") +
                           (base->isNull() ? "null (invalid)"
                                           : fmtNum(base->asDouble())) +
                           ", current is " +
                           (cur->isNull() ? "null (invalid)"
                                          : fmtNum(cur->asDouble()))});
        return;
    }
    if (!base->isNumber() || !cur->isNumber()) {
        report.drifts.push_back({path, "field is not numeric"});
        return;
    }
    double a = base->asDouble(), b = cur->asDouble();
    if (!withinTol(a, b, relTol)) {
        double scale = std::max(std::fabs(a), std::fabs(b));
        double rel = scale > 0 ? std::fabs(a - b) / scale : 0.0;
        report.drifts.push_back(
            {path, "baseline " + fmtNum(a) + ", current " + fmtNum(b) +
                       " (rel delta " + fmtNum(rel) + ")"});
    }
}

void
diffMetric(const std::string &name, const JsonValue &base,
           const JsonValue &cur, double relTol, CheckReport &report)
{
    const JsonValue *bt = base.find("type");
    const JsonValue *ct = cur.find("type");
    std::string btype = bt ? bt->asString() : "";
    std::string ctype = ct ? ct->asString() : "";
    if (btype != ctype) {
        report.drifts.push_back(
            {name, "type changed: baseline '" + btype +
                       "', current '" + ctype + "'"});
        return;
    }
    if (btype == "counter" || btype == "gauge") {
        diffField(name, base.find("value"), cur.find("value"), relTol,
                  report);
        return;
    }
    if (btype == "distribution") {
        for (const char *field :
             {"count", "mean", "p50", "p90", "p99", "overflow"})
            diffField(name + "." + field, base.find(field),
                      cur.find(field), relTol, report);
        const JsonValue *bb = base.find("buckets");
        const JsonValue *cb = cur.find("buckets");
        if (!bb || !bb->isArray() || !cb || !cb->isArray()) {
            report.drifts.push_back({name, "malformed buckets array"});
            return;
        }
        if (bb->items().size() != cb->items().size()) {
            report.drifts.push_back(
                {name + ".buckets",
                 "bucket count changed: baseline " +
                     std::to_string(bb->items().size()) + ", current " +
                     std::to_string(cb->items().size())});
            return;
        }
        for (std::size_t i = 0; i < bb->items().size(); ++i)
            diffField(name + ".buckets[" + std::to_string(i) + "]",
                      &bb->items()[i], &cb->items()[i], relTol,
                      report);
        return;
    }
    report.drifts.push_back(
        {name, "unknown metric type '" + btype + "'"});
}

} // namespace

CheckReport
checkMetrics(const JsonValue &baseline, const JsonValue &current,
             double relTol)
{
    CheckReport report;

    if (!baseline.isObject()) {
        report.error = "baseline is not a JSON object";
        return report;
    }
    if (!current.isObject()) {
        report.error = "current dump is not a JSON object";
        return report;
    }
    const JsonValue *bs = baseline.find("schema");
    const JsonValue *cs = current.find("schema");
    if (!bs || bs->asString() != kMetricsSchema) {
        report.error = "baseline schema is '" +
                       (bs ? bs->asString() : std::string("<missing>")) +
                       "', expected '" + kMetricsSchema + "'";
        return report;
    }
    if (!cs || cs->asString() != kMetricsSchema) {
        report.error = "current dump schema is '" +
                       (cs ? cs->asString() : std::string("<missing>")) +
                       "', expected '" + kMetricsSchema + "'";
        return report;
    }

    // Context: every key the baseline pins must match exactly. On
    // mismatch, stop — comparing metrics recorded under different
    // scales would bury the root cause in follow-on drifts.
    const JsonValue *bctx = baseline.find("context");
    const JsonValue *cctx = current.find("context");
    if (bctx && bctx->isObject()) {
        for (const auto &[key, bval] : bctx->members()) {
            const JsonValue *cval =
                cctx ? cctx->find(key) : nullptr;
            if (!cval) {
                report.drifts.push_back(
                    {"context." + key,
                     "missing from the current run's context"});
            } else if (bval.isNumber() &&
                       bval.asDouble() != cval->asDouble()) {
                report.drifts.push_back(
                    {"context." + key,
                     "baseline " + fmtNum(bval.asDouble()) +
                         ", current " + fmtNum(cval->asDouble()) +
                         " — rerun with matching settings or "
                         "regenerate the baseline"});
            } else if (bval.isString() &&
                       bval.asString() != cval->asString()) {
                report.drifts.push_back(
                    {"context." + key,
                     "baseline '" + bval.asString() + "', current '" +
                         cval->asString() + "'"});
            }
        }
        if (!report.drifts.empty())
            return report;
    }

    const JsonValue *bm = baseline.find("metrics");
    const JsonValue *cm = current.find("metrics");
    if (!bm || !bm->isObject()) {
        report.error = "baseline has no \"metrics\" object";
        return report;
    }
    if (!cm || !cm->isObject()) {
        report.error = "current dump has no \"metrics\" object";
        return report;
    }

    for (const auto &[name, bval] : bm->members()) {
        const JsonValue *vol = bval.find("volatile");
        if (vol && vol->asBool()) {
            ++report.skippedVolatile;
            continue;
        }
        const JsonValue *cval = cm->find(name);
        if (!cval) {
            report.drifts.push_back(
                {name, "metric missing from current run"});
            continue;
        }
        ++report.compared;
        diffMetric(name, bval, *cval, relTol, report);
    }
    return report;
}

void
printCheckReport(std::ostream &os, const CheckReport &report,
                 const std::string &baselinePath, double relTol)
{
    if (!report.error.empty()) {
        os << "metrics check: ERROR: " << report.error << '\n';
        return;
    }
    for (const auto &d : report.drifts)
        os << "DRIFT  " << d.name << ": " << d.reason << '\n';
    os << "metrics check: " << report.compared
       << " metric(s) compared against " << baselinePath << ", "
       << report.drifts.size() << " drift(s), "
       << report.skippedVolatile
       << " volatile skipped (rel-tol " << jsonNumber(relTol)
       << ")\n";
}

} // namespace lvplib::obs

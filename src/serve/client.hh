/**
 * @file
 * ServeClient: the client half of the lvp-serve protocol, used by the
 * lvpload load generator and the serve tests.
 *
 * One ServeClient is one connection; after the hello() handshake it
 * can run any number of sessions back to back. Methods are
 * synchronous: each performs its request/reply exchange and returns
 * the decoded result. A server Error frame surfaces as SimError
 * carrying the server's ErrorKind and message, so client code handles
 * remote failures exactly like local ones (retry, fall back, or
 * report).
 */

#ifndef LVPLIB_SERVE_CLIENT_HH
#define LVPLIB_SERVE_CLIENT_HH

#include <cstdint>
#include <span>
#include <string>

#include "serve/framing.hh"
#include "serve/protocol.hh"

namespace lvplib::serve
{

/** One client connection; see file comment. */
class ServeClient
{
  public:
    /** Wrap a connected socket fd (takes ownership). */
    explicit ServeClient(int fd,
                         std::uint64_t maxFrameBytes = 16ull << 20,
                         std::uint64_t chaosKey = 0);

    /** @{ Connect to a server endpoint.
     *  @throws SimError(TraceIo) when the connection fails. */
    static ServeClient connectUnix(const std::string &path,
                                   std::uint64_t maxFrameBytes =
                                       16ull << 20);
    static ServeClient connectTcp(std::uint16_t port,
                                  std::uint64_t maxFrameBytes =
                                      16ull << 20);
    /** @} */

    /** Version handshake; must be the first exchange. */
    void hello();

    struct OpenResult
    {
        std::uint64_t sessionId = 0;
        bool cached = false; ///< server holds this stream; RunCached ok
    };

    /** Open a session for @p req.predictor over the stream @p req
     *  names. */
    OpenResult open(const OpenRequest &req);

    /** Stream one chunk of records into the open session. */
    void sendChunk(std::span<const ServeRecord> records);

    /** Stream one pre-encoded chunk (the load generator's hot path —
     *  streams are encoded once and shared across users). */
    void sendChunkRaw(std::span<const std::uint8_t> payload);

    /**
     * Ask the server to replay its cached copy of the stream. Fire
     * and forget, like sendChunk(); if the entry was evicted between
     * OpenOk and now the next reply (metrics()/closeSession()) throws
     * SimError(RetryExhausted) and the connection is done — reconnect
     * and stream the chunks instead.
     */
    void runCached();

    /** Mid-stream statistics snapshot (chunk-boundary consistent). */
    SessionMetrics metrics();

    /** Close the session; returns the drained final snapshot. */
    SessionMetrics closeSession();

    /** End the conversation cleanly. */
    void goodbye();

  private:
    /** Read a frame, expecting @p want; Error frames rethrow as
     *  SimError with the server's kind and message. */
    Frame expect(FrameType want);

    FrameIo io_;
};

} // namespace lvplib::serve

#endif // LVPLIB_SERVE_CLIENT_HH

/**
 * @file
 * ServeClient: the client half of the lvp-serve protocol, used by the
 * lvpload load generator and the serve tests.
 *
 * One ServeClient is one connection; after the hello() handshake it
 * can run any number of sessions back to back. Methods are
 * synchronous: each performs its request/reply exchange and returns
 * the decoded result. A server Error frame surfaces as SimError
 * carrying the server's ErrorKind and message, so client code handles
 * remote failures exactly like local ones (retry, fall back, or
 * report).
 */

#ifndef LVPLIB_SERVE_CLIENT_HH
#define LVPLIB_SERVE_CLIENT_HH

#include <cstdint>
#include <span>
#include <string>

#include "serve/framing.hh"
#include "serve/protocol.hh"

namespace lvplib::serve
{

/** One client connection; see file comment. */
class ServeClient
{
  public:
    /** Wrap a connected socket fd (takes ownership). */
    explicit ServeClient(int fd,
                         std::uint64_t maxFrameBytes = 16ull << 20,
                         std::uint64_t chaosKey = 0);

    /** @{ Connect to a server endpoint.
     *  @throws SimError(TraceIo) when the connection fails. */
    static ServeClient connectUnix(const std::string &path,
                                   std::uint64_t maxFrameBytes =
                                       16ull << 20);
    static ServeClient connectTcp(std::uint16_t port,
                                  std::uint64_t maxFrameBytes =
                                      16ull << 20);
    /** @} */

    /** Version handshake; must be the first exchange. */
    void hello();

    struct OpenResult
    {
        std::uint64_t sessionId = 0;
        bool cached = false; ///< server holds this stream; RunCached ok
        std::uint64_t resumeToken = 0; ///< for ResumeSession after a
                                       ///< dropped connection
    };

    /** Open a session for @p req.predictor over the stream @p req
     *  names. */
    OpenResult open(const OpenRequest &req);

    /**
     * Revive a session parked by the server after this client's
     * previous connection dropped. On success the reply names the
     * record offset to continue streaming from; on a typed rejection
     * (unknown/expired token, or a different worker process answered)
     * SimError(RetryExhausted) is thrown and the connection stays
     * usable — fall back to open() and stream from record 0.
     */
    ResumeReply resume(std::uint64_t sessionId, std::uint64_t token);

    /** One-way keepalive: resets the server's idle deadline. Legal
     *  both inside a session and between sessions. */
    void heartbeat();

    /** Stream one chunk of records into the open session. */
    void sendChunk(std::span<const ServeRecord> records);

    /** Stream one pre-encoded chunk (the load generator's hot path —
     *  streams are encoded once and shared across users). */
    void sendChunkRaw(std::span<const std::uint8_t> payload);

    /**
     * Ask the server to replay its cached copy of the stream. Fire
     * and forget, like sendChunk(); if the entry was evicted between
     * OpenOk and now the next reply (metrics()/closeSession()) throws
     * SimError(RetryExhausted) and the connection is done — reconnect
     * and stream the chunks instead.
     */
    void runCached();

    /** Mid-stream statistics snapshot (chunk-boundary consistent). */
    SessionMetrics metrics();

    /** Close the session; returns the drained final snapshot. */
    SessionMetrics closeSession();

    /** End the conversation cleanly. */
    void goodbye();

    /**
     * Simulate a client crash: shut the socket down with no Goodbye
     * and no session close. The server parks the in-flight session;
     * a new connection can resume() it. The chaos load driver's
     * primary fault.
     */
    void abortConnection();

  private:
    /** Read a frame, expecting @p want; Error frames rethrow as
     *  SimError with the server's kind and message. */
    Frame expect(FrameType want);

    FrameIo io_;
};

} // namespace lvplib::serve

#endif // LVPLIB_SERVE_CLIENT_HH

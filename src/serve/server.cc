#include "serve/server.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/value_predictor.hh"
#include "obs/metrics.hh"
#include "serve/session.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace lvplib::serve
{

namespace
{

/** serve.* obs mirrors, resolved once. All volatile: serving traffic
 *  is inherently run-dependent and must never enter a golden dump. */
struct ServeObs
{
    obs::Counter &connections =
        obs::metrics().counter("serve.connections");
    obs::Counter &sessionsOpened =
        obs::metrics().counter("serve.sessions_opened");
    obs::Counter &sessionsClosed =
        obs::metrics().counter("serve.sessions_closed");
    obs::Counter &frameErrors =
        obs::metrics().counter("serve.frame_errors");
    obs::Counter &records = obs::metrics().counter("serve.records");
    obs::Counter &chunks = obs::metrics().counter("serve.chunks");
    obs::Gauge &sessionsActive =
        obs::metrics().gauge("serve.sessions_active", /*isVolatile=*/true);
    obs::Distribution &queueDepth =
        obs::metrics().distribution("serve.queue_depth", /*buckets=*/16);
};

ServeObs &
serveObs()
{
    static ServeObs o;
    return o;
}

[[noreturn]] void
netError(const char *what, int err)
{
    throw SimError(ErrorKind::TraceIo, std::string("serve: ") + what +
                                           ": " + std::strerror(err));
}

} // namespace

ServeOptions
ServeOptions::fromEnv(ServeOptions base)
{
    if (const char *s = std::getenv("LVPLIB_SERVE_SOCKET"); s && *s)
        base.socketPath = s;
    if (auto v = envUnsigned("LVPLIB_SERVE_PORT", 1, 65535))
        base.port = static_cast<std::uint16_t>(*v);
    if (auto v = envUnsigned("LVPLIB_SERVE_MAX_SESSIONS", 1))
        base.maxSessions = *v;
    if (auto v = envUnsigned("LVPLIB_SERVE_LRU_BYTES"))
        base.lruBytes = *v;
    if (auto v = envUnsigned("LVPLIB_SERVE_QUEUE_CHUNKS", 1))
        base.queueChunks = *v;
    return base;
}

ServeOptions
ServeOptions::fromEnv()
{
    return fromEnv(ServeOptions());
}

LvpServer::LvpServer(ServeOptions opts)
    : opts_(std::move(opts)), lru_(opts_.lruBytes)
{
}

LvpServer::~LvpServer()
{
    stop();
}

std::string
LvpServer::endpoint() const
{
    if (!opts_.socketPath.empty())
        return "unix:" + opts_.socketPath;
    return "tcp:127.0.0.1:" + std::to_string(boundPort_);
}

void
LvpServer::start()
{
    std::lock_guard<std::mutex> stopLock(stopMutex_);
    lvp_assert(!started_, "LvpServer::start() called twice");
    if (!opts_.socketPath.empty()) {
        if (opts_.socketPath.size() >= sizeof(sockaddr_un{}.sun_path))
            throw SimError(ErrorKind::TraceIo,
                           "serve: unix socket path too long: " +
                               opts_.socketPath);
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd_ < 0)
            netError("socket(AF_UNIX) failed", errno);
        ::unlink(opts_.socketPath.c_str()); // stale path from a crash
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, opts_.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) < 0) {
            int err = errno;
            ::close(listenFd_);
            listenFd_ = -1;
            netError(("bind(" + opts_.socketPath + ") failed").c_str(),
                     err);
        }
    } else {
        listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listenFd_ < 0)
            netError("socket(AF_INET) failed", errno);
        int one = 1;
        ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(opts_.port);
        if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) < 0) {
            int err = errno;
            ::close(listenFd_);
            listenFd_ = -1;
            netError(("bind(port " + std::to_string(opts_.port) +
                      ") failed")
                         .c_str(),
                     err);
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&bound),
                          &len) == 0)
            boundPort_ = ntohs(bound.sin_port);
    }
    if (::listen(listenFd_, 64) < 0) {
        int err = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        netError("listen failed", err);
    }
    stopping_.store(false, std::memory_order_relaxed);
    started_ = true;
    acceptor_ = std::thread([this] { acceptLoop(); });
}

void
LvpServer::acceptLoop()
{
    while (!stopping_.load(std::memory_order_relaxed)) {
        pollfd pfd{listenFd_, POLLIN, 0};
        int r = ::poll(&pfd, 1, /*timeout-ms=*/100);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            break; // listen socket gone; stop() is the only cause
        }
        if (r == 0 || !(pfd.revents & POLLIN))
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        connections_.fetch_add(1, std::memory_order_relaxed);
        serveObs().connections.add();
        std::lock_guard<std::mutex> lock(connMutex_);
        std::uint64_t id = nextConnId_++;
        Conn &c = conns_[id];
        c.io = std::make_unique<FrameIo>(fd, opts_.maxFrameBytes,
                                         /*chaosKey=*/id);
        // The handler locks connMutex_ first thing, so it cannot
        // observe a half-built entry.
        c.thread = std::thread([this, id] { handleConnection(id); });
    }
}

void
LvpServer::handleConnection(std::uint64_t connId)
{
    FrameIo *io = nullptr;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        auto it = conns_.find(connId);
        lvp_assert(it != conns_.end(), "connection %llu vanished",
                   static_cast<unsigned long long>(connId));
        io = it->second.io.get();
    }
    try {
        Frame f = io->read();
        if (f.type != FrameType::Hello)
            throw SimError(ErrorKind::TraceCorrupt,
                           std::string("serve: expected HELLO, got ") +
                               frameTypeName(f.type));
        std::uint16_t version = decodeHello(f.payload, "HELLO");
        if (version != ProtocolVersion) {
            io->write(FrameType::Error,
                      encodeError(ErrorKind::TraceCorrupt,
                                  "protocol version " +
                                      std::to_string(version) +
                                      " unsupported (want " +
                                      std::to_string(ProtocolVersion) +
                                      ")"));
        } else {
            io->write(FrameType::HelloOk, encodeHello(ProtocolVersion));
            Frame next;
            while (!stopping_.load(std::memory_order_relaxed) &&
                   io->readOrEof(next)) {
                if (next.type == FrameType::Goodbye) {
                    io->write(FrameType::Goodbye, {});
                    break;
                }
                if (next.type != FrameType::OpenSession)
                    throw SimError(
                        ErrorKind::TraceCorrupt,
                        std::string(
                            "serve: expected OPEN_SESSION or GOODBYE, "
                            "got ") +
                            frameTypeName(next.type));
                runSession(*io, next);
            }
        }
    } catch (const SimError &e) {
        // Containment boundary: this connection dies, nobody else
        // does. The Error reply is best-effort — the socket may be
        // the thing that broke.
        serveObs().frameErrors.add();
        try {
            io->write(FrameType::Error, encodeError(e.kind(), e.what()));
        } catch (const SimError &) {
        }
    }
    unregisterThread(connId);
}

void
LvpServer::runSession(FrameIo &io, const Frame &openFrame)
{
    OpenRequest req = decodeOpen(openFrame.payload);
    const core::PredictorInfo *info = core::findPredictor(req.predictor);
    if (!info) {
        // A usage error, not a protocol violation: report it and keep
        // the connection; the client may retry with a valid name.
        io.write(FrameType::Error,
                 encodeError(ErrorKind::TraceCorrupt,
                             "unknown predictor '" + req.predictor +
                                 "'"));
        return;
    }
    if (activeSessions_.load(std::memory_order_relaxed) >=
        opts_.maxSessions) {
        io.write(FrameType::Error,
                 encodeError(ErrorKind::RetryExhausted,
                             "session limit of " +
                                 std::to_string(opts_.maxSessions) +
                                 " reached"));
        return;
    }

    bool cached = req.fingerprint != 0 && lru_.contains(req.fingerprint);
    std::uint64_t sessionId =
        nextSessionId_.fetch_add(1, std::memory_order_relaxed);
    Session session(sessionId, *info, opts_.queueChunks);
    activeSessions_.fetch_add(1, std::memory_order_relaxed);
    serveObs().sessionsOpened.add();
    serveObs().sessionsActive.set(
        static_cast<double>(activeSessions_.load()));
    struct ActiveGuard
    {
        std::atomic<std::uint64_t> &active;
        ~ActiveGuard()
        {
            active.fetch_sub(1, std::memory_order_relaxed);
            serveObs().sessionsActive.set(
                static_cast<double>(active.load()));
        }
    } guard{activeSessions_};

    io.write(FrameType::OpenOk, encodeOpenOk(sessionId, cached));

    // While streaming, rebuild the declared fingerprint and keep the
    // decoded records so a completed stream can seed the LRU. The
    // accumulator is bounded by the LRU budget: a stream that outgrows
    // it just stops being a caching candidate.
    std::vector<ServeRecord> streamed;
    bool accumulate = req.fingerprint != 0 && !cached &&
                      lru_.maxBytes() > 0;
    std::uint64_t fp = FingerprintSeed;

    for (;;) {
        Frame f = io.read(); // EOF mid-session is an error, not Goodbye
        switch (f.type) {
          case FrameType::TraceChunk: {
            fp = streamFingerprint(f.payload, fp);
            auto blob = std::make_shared<std::vector<ServeRecord>>(
                decodeRecords(f.payload));
            serveObs().records.add(blob->size());
            serveObs().chunks.add();
            if (accumulate) {
                if ((streamed.size() + blob->size()) *
                        sizeof(ServeRecord) >
                    lru_.maxBytes()) {
                    streamed.clear();
                    streamed.shrink_to_fit();
                    accumulate = false;
                } else {
                    streamed.insert(streamed.end(), blob->begin(),
                                    blob->end());
                }
            }
            session.push(std::move(blob));
            serveObs().queueDepth.record(session.queueDepth());
            break;
          }
          case FrameType::RunCached: {
            TraceBlob blob = lru_.get(req.fingerprint);
            if (!blob) {
                // Raced with eviction since OpenOk said cached. A
                // reply here would desync the request/reply flow, so
                // fail the session; the client reconnects and streams.
                throw SimError(ErrorKind::RetryExhausted,
                               "serve: stream no longer cached; "
                               "reconnect and stream TRACE_CHUNK "
                               "frames");
            }
            serveObs().records.add(blob->size());
            serveObs().chunks.add();
            session.push(std::move(blob));
            accumulate = false;
            break;
          }
          case FrameType::Metrics: {
            SessionMetrics m = session.snapshot();
            m.final_ = false;
            io.write(FrameType::MetricsReply, encodeMetrics(m));
            break;
          }
          case FrameType::CloseSession: {
            session.drain();
            if (accumulate && !streamed.empty() &&
                fp == req.fingerprint) {
                lru_.insert(req.fingerprint,
                            std::make_shared<
                                const std::vector<ServeRecord>>(
                                std::move(streamed)));
            }
            SessionMetrics m = session.snapshot();
            m.final_ = true;
            io.write(FrameType::MetricsReply, encodeMetrics(m));
            serveObs().sessionsClosed.add();
            return;
          }
          default:
            throw SimError(ErrorKind::TraceCorrupt,
                           std::string("serve: unexpected ") +
                               frameTypeName(f.type) +
                               " inside a session");
        }
    }
}

void
LvpServer::unregisterThread(std::uint64_t connId)
{
    std::lock_guard<std::mutex> lock(connMutex_);
    auto it = conns_.find(connId);
    if (it == conns_.end())
        return;
    // A thread cannot join itself; park the handle for stop() and
    // drop the Conn (closing the fd) now.
    finished_.push_back(std::move(it->second.thread));
    conns_.erase(it);
}

void
LvpServer::stop()
{
    std::lock_guard<std::mutex> stopLock(stopMutex_);
    if (!started_)
        return;
    stopping_.store(true, std::memory_order_relaxed);
    if (acceptor_.joinable())
        acceptor_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }

    // Drain window: let in-flight connections finish their sessions
    // and say Goodbye on their own.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(opts_.drainMs);
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(connMutex_);
            if (conns_.empty())
                break;
        }
        if (std::chrono::steady_clock::now() >= deadline) {
            // Past the window: shut the sockets down; handlers see
            // SimError(TraceIo) and unwind through the containment
            // path.
            std::lock_guard<std::mutex> lock(connMutex_);
            for (auto &[id, conn] : conns_)
                conn.io->shutdown();
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    // Handlers unregister themselves as they exit; wait for the map
    // to empty, then join every parked handle.
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(connMutex_);
            if (conns_.empty())
                break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::vector<std::thread> done;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        done.swap(finished_);
    }
    for (std::thread &t : done)
        if (t.joinable())
            t.join();
    if (!opts_.socketPath.empty())
        ::unlink(opts_.socketPath.c_str());
    started_ = false;
}

} // namespace lvplib::serve

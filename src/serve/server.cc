#include "serve/server.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "chaos/chaos.hh"
#include "core/value_predictor.hh"
#include "obs/metrics.hh"
#include "serve/session.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace lvplib::serve
{

namespace
{

/** serve.* obs mirrors, resolved once. All volatile: serving traffic
 *  is inherently run-dependent and must never enter a golden dump. */
struct ServeObs
{
    obs::Counter &connections =
        obs::metrics().counter("serve.connections");
    obs::Counter &sessionsOpened =
        obs::metrics().counter("serve.sessions_opened");
    obs::Counter &sessionsClosed =
        obs::metrics().counter("serve.sessions_closed");
    obs::Counter &frameErrors =
        obs::metrics().counter("serve.frame_errors");
    obs::Counter &records = obs::metrics().counter("serve.records");
    obs::Counter &chunks = obs::metrics().counter("serve.chunks");
    obs::Gauge &sessionsActive =
        obs::metrics().gauge("serve.sessions_active", /*isVolatile=*/true);
    obs::Distribution &queueDepth =
        obs::metrics().distribution("serve.queue_depth", /*buckets=*/16);
};

ServeObs &
serveObs()
{
    static ServeObs o;
    return o;
}

/**
 * serve.resume.* counters register on first event, not at server
 * construction: a fault-free run (no disconnects, no stalls, no
 * resumes) must produce a metrics JSON byte-identical to one from a
 * build without the resume machinery. Events are rare by definition,
 * so the by-name registry lookup is fine (same discipline as
 * ChaosEngine::recordRecovered).
 */
void
bumpResume(const char *what, std::uint64_t n = 1)
{
    obs::metrics()
        .counter(std::string("serve.resume.") + what)
        .add(n);
}

[[noreturn]] void
netError(const char *what, int err)
{
    throw SimError(ErrorKind::TraceIo, std::string("serve: ") + what +
                                           ": " + std::strerror(err));
}

/** 64-bit finalizer (splitmix64-style) for resume-token whitening:
 *  tokens must not be guessable from the (sequential) session id. */
std::uint64_t
whiten(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

/** Reset a FrameIo's read deadline on scope exit (sessions carry an
 *  idle deadline; the between-sessions top level does not). */
struct DeadlineGuard
{
    FrameIo &io;
    ~DeadlineGuard() { io.setReadDeadline(0); }
};

} // namespace

/**
 * Owns one unit of the active-session count. Scope exit releases it,
 * but the clean-close path releases EARLY — before the final
 * MetricsReply is written — so a client that has its final snapshot
 * in hand can immediately open a new session without racing the
 * handler thread's stack unwind for the session slot.
 */
struct ActiveSessionGuard
{
    std::atomic<std::uint64_t> *active = nullptr;

    void release()
    {
        if (!active)
            return;
        active->fetch_sub(1, std::memory_order_relaxed);
        serveObs().sessionsActive.set(
            static_cast<double>(active->load()));
        active = nullptr;
    }
    ~ActiveSessionGuard() { release(); }
};

ServeOptions
ServeOptions::fromEnv(ServeOptions base)
{
    if (const char *s = std::getenv("LVPLIB_SERVE_SOCKET"); s && *s)
        base.socketPath = s;
    if (auto v = envUnsigned("LVPLIB_SERVE_PORT", 1, 65535))
        base.port = static_cast<std::uint16_t>(*v);
    if (auto v = envUnsigned("LVPLIB_SERVE_MAX_SESSIONS", 1))
        base.maxSessions = *v;
    if (auto v = envUnsigned("LVPLIB_SERVE_LRU_BYTES"))
        base.lruBytes = *v;
    if (auto v = envUnsigned("LVPLIB_SERVE_QUEUE_CHUNKS", 1))
        base.queueChunks = *v;
    if (auto v = envUnsigned("LVPLIB_SERVE_IDLE_MS"))
        base.idleMs = *v;
    if (auto v = envUnsigned("LVPLIB_SERVE_RESUME_TTL_MS"))
        base.resumeTtlMs = *v;
    if (auto v = envUnsigned("LVPLIB_SERVE_MAX_PARKED"))
        base.maxParked = *v;
    return base;
}

ServeOptions
ServeOptions::fromEnv()
{
    return fromEnv(ServeOptions());
}

int
openListenSocket(const ServeOptions &opts, std::uint16_t &boundPort)
{
    int fd = -1;
    if (!opts.socketPath.empty()) {
        if (opts.socketPath.size() >= sizeof(sockaddr_un{}.sun_path))
            throw SimError(ErrorKind::TraceIo,
                           "serve: unix socket path too long: " +
                               opts.socketPath);
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            netError("socket(AF_UNIX) failed", errno);
        ::unlink(opts.socketPath.c_str()); // stale path from a crash
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, opts.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) < 0) {
            int err = errno;
            ::close(fd);
            netError(("bind(" + opts.socketPath + ") failed").c_str(),
                     err);
        }
    } else {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            netError("socket(AF_INET) failed", errno);
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(opts.port);
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) < 0) {
            int err = errno;
            ::close(fd);
            netError(("bind(port " + std::to_string(opts.port) +
                      ") failed")
                         .c_str(),
                     err);
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                          &len) == 0)
            boundPort = ntohs(bound.sin_port);
    }
    if (::listen(fd, 64) < 0) {
        int err = errno;
        ::close(fd);
        netError("listen failed", err);
    }
    return fd;
}

LvpServer::LvpServer(ServeOptions opts)
    : opts_(std::move(opts)), lru_(opts_.lruBytes)
{
}

LvpServer::~LvpServer()
{
    stop();
}

std::string
LvpServer::endpoint() const
{
    if (!opts_.socketPath.empty())
        return "unix:" + opts_.socketPath;
    return "tcp:127.0.0.1:" + std::to_string(boundPort_);
}

void
LvpServer::start()
{
    std::lock_guard<std::mutex> stopLock(stopMutex_);
    lvp_assert(!started_, "LvpServer::start() called twice");
    if (opts_.listenFd >= 0) {
        // A supervised worker: the socket was bound and set listening
        // before the fork; we just accept on our inherited copy.
        listenFd_ = opts_.listenFd;
        ownListener_ = false;
        if (opts_.socketPath.empty()) {
            sockaddr_in bound{};
            socklen_t len = sizeof(bound);
            if (::getsockname(listenFd_,
                              reinterpret_cast<sockaddr *>(&bound),
                              &len) == 0)
                boundPort_ = ntohs(bound.sin_port);
        }
    } else {
        listenFd_ = openListenSocket(opts_, boundPort_);
        ownListener_ = true;
    }
    stopping_.store(false, std::memory_order_relaxed);
    started_ = true;
    acceptor_ = std::thread([this] { acceptLoop(); });
}

void
LvpServer::acceptLoop()
{
    while (!stopping_.load(std::memory_order_relaxed)) {
        pollfd pfd{listenFd_, POLLIN, 0};
        int r = ::poll(&pfd, 1, /*timeout-ms=*/100);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            break; // listen socket gone; stop() is the only cause
        }
        if (r == 0 || !(pfd.revents & POLLIN))
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        connections_.fetch_add(1, std::memory_order_relaxed);
        serveObs().connections.add();
        std::lock_guard<std::mutex> lock(connMutex_);
        std::uint64_t id = nextConnId_++;
        Conn &c = conns_[id];
        c.io = std::make_unique<FrameIo>(fd, opts_.maxFrameBytes,
                                         /*chaosKey=*/id);
        // The handler locks connMutex_ first thing, so it cannot
        // observe a half-built entry.
        c.thread = std::thread([this, id] { handleConnection(id); });
    }
}

void
LvpServer::handleConnection(std::uint64_t connId)
{
    FrameIo *io = nullptr;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        auto it = conns_.find(connId);
        lvp_assert(it != conns_.end(), "connection %llu vanished",
                   static_cast<unsigned long long>(connId));
        io = it->second.io.get();
    }
    // Worker-kill chaos: supervised workers only (workerIndex >= 0) —
    // the supervisor restarts the worker and parked clients fall back
    // to fresh sessions; killing a standalone server would just be an
    // outage, not a recoverable fault.
    if (opts_.workerIndex >= 0 &&
        chaos::engine().shouldInject(
            chaos::Point::ServeWorkerKill,
            static_cast<std::uint64_t>(opts_.workerIndex) + 1, connId)) {
        std::fprintf(stderr,
                     "lvpserve: worker %d: injected worker kill "
                     "(connection %llu)\n",
                     opts_.workerIndex,
                     static_cast<unsigned long long>(connId));
        std::fflush(nullptr);
        std::_Exit(70); // abrupt death: no drain, no destructors
    }
    try {
        Frame f = io->read();
        if (f.type != FrameType::Hello)
            throw SimError(ErrorKind::TraceCorrupt,
                           std::string("serve: expected HELLO, got ") +
                               frameTypeName(f.type));
        std::uint16_t version = decodeHello(f.payload, "HELLO");
        if (version != ProtocolVersion) {
            io->write(FrameType::Error,
                      encodeError(ErrorKind::TraceCorrupt,
                                  "protocol version " +
                                      std::to_string(version) +
                                      " unsupported (want " +
                                      std::to_string(ProtocolVersion) +
                                      ")"));
        } else {
            io->write(FrameType::HelloOk, encodeHello(ProtocolVersion));
            Frame next;
            while (!stopping_.load(std::memory_order_relaxed) &&
                   io->readOrEof(next)) {
                if (next.type == FrameType::Goodbye) {
                    io->write(FrameType::Goodbye, {});
                    break;
                }
                if (next.type == FrameType::Heartbeat) {
                    bumpResume("heartbeats");
                    continue; // keepalive; no reply
                }
                if (next.type == FrameType::ResumeSession) {
                    runResumedSession(*io, next);
                    continue;
                }
                if (next.type != FrameType::OpenSession)
                    throw SimError(
                        ErrorKind::TraceCorrupt,
                        std::string(
                            "serve: expected OPEN_SESSION, "
                            "RESUME_SESSION or GOODBYE, got ") +
                            frameTypeName(next.type));
                runSession(*io, next);
            }
        }
    } catch (const SimError &e) {
        // Containment boundary: this connection dies, nobody else
        // does. The Error reply is best-effort — the socket may be
        // the thing that broke.
        serveObs().frameErrors.add();
        try {
            io->write(FrameType::Error, encodeError(e.kind(), e.what()));
        } catch (const SimError &) {
        }
    }
    unregisterThread(connId);
}

void
LvpServer::runSession(FrameIo &io, const Frame &openFrame)
{
    OpenRequest req = decodeOpen(openFrame.payload);
    const core::PredictorInfo *info = core::findPredictor(req.predictor);
    if (!info) {
        // A usage error, not a protocol violation: report it and keep
        // the connection; the client may retry with a valid name.
        io.write(FrameType::Error,
                 encodeError(ErrorKind::TraceCorrupt,
                             "unknown predictor '" + req.predictor +
                                 "'"));
        return;
    }
    if (activeSessions_.load(std::memory_order_relaxed) >=
        opts_.maxSessions) {
        io.write(FrameType::Error,
                 encodeError(ErrorKind::RetryExhausted,
                             "session limit of " +
                                 std::to_string(opts_.maxSessions) +
                                 " reached"));
        return;
    }

    bool cached = req.fingerprint != 0 && lru_.contains(req.fingerprint);
    std::uint64_t sessionId =
        nextSessionId_.fetch_add(1, std::memory_order_relaxed);
    // Mix the pid into the token: supervised workers each run their
    // own counter from 1, and two workers must never mint the same
    // (sessionId, token) pair — a client resuming on a sibling worker
    // has to be REJECTED (and fall back to a fresh session), not
    // silently handed another user's parked checkpoint.
    std::uint64_t token =
        whiten(sessionId * 0x9e3779b97f4a7c15ull ^
               (static_cast<std::uint64_t>(::getpid()) << 32) ^
               nextToken_.fetch_add(1, std::memory_order_relaxed));
    if (token == 0)
        token = 1; // 0 would read as "no token"
    Session session(sessionId, *info, opts_.queueChunks);
    activeSessions_.fetch_add(1, std::memory_order_relaxed);
    serveObs().sessionsOpened.add();
    serveObs().sessionsActive.set(
        static_cast<double>(activeSessions_.load()));
    ActiveSessionGuard guard{&activeSessions_};

    io.write(FrameType::OpenOk, encodeOpenOk(sessionId, cached, token));
    streamSession(io, session, req, token, /*mayCache=*/!cached, guard);
}

void
LvpServer::runResumedSession(FrameIo &io, const Frame &resumeFrame)
{
    ResumeRequest req = decodeResume(resumeFrame.payload);
    Parked parked;
    bool found = false;
    {
        std::lock_guard<std::mutex> lock(parkMutex_);
        auto now = std::chrono::steady_clock::now();
        for (auto it = parked_.begin(); it != parked_.end();) {
            if (it->second.expiry <= now) {
                bumpResume("expired");
                it = parked_.erase(it);
            } else {
                ++it;
            }
        }
        auto it = parked_.find(req.token);
        if (it != parked_.end() && it->second.sessionId == req.sessionId) {
            parked = std::move(it->second);
            parked_.erase(it);
            found = true;
        }
    }
    if (!found) {
        // Expired, never parked, or parked in another worker process:
        // a typed, connection-preserving rejection. The client falls
        // back to a fresh session and streams from record 0 —
        // byte-identity holds either way.
        bumpResume("rejected");
        io.write(FrameType::Error,
                 encodeError(ErrorKind::RetryExhausted,
                             "no parked session for this token; "
                             "open a fresh session and stream from "
                             "record 0"));
        return;
    }
    const core::PredictorInfo *info =
        core::findPredictor(parked.cp.predictor);
    lvp_assert(info != nullptr,
               "parked session names unknown predictor '%s'",
               parked.cp.predictor.c_str());
    if (activeSessions_.load(std::memory_order_relaxed) >=
        opts_.maxSessions) {
        io.write(FrameType::Error,
                 encodeError(ErrorKind::RetryExhausted,
                             "session limit of " +
                                 std::to_string(opts_.maxSessions) +
                                 " reached"));
        return;
    }

    Session session(parked.sessionId, *info, opts_.queueChunks,
                    &parked.cp);
    activeSessions_.fetch_add(1, std::memory_order_relaxed);
    bumpResume("resumed");
    serveObs().sessionsActive.set(
        static_cast<double>(activeSessions_.load()));
    ActiveSessionGuard guard{&activeSessions_};

    ResumeReply rep;
    rep.sessionId = parked.sessionId;
    rep.recordsProcessed = parked.cp.recordsProcessed;
    rep.chunksProcessed = parked.cp.chunksProcessed;
    io.write(FrameType::ResumeOk, encodeResumeOk(rep));

    // A resumed session never seeds the LRU: its fingerprint
    // accumulator would cover only the post-resume suffix.
    OpenRequest openReq;
    openReq.predictor = parked.cp.predictor;
    streamSession(io, session, openReq, req.token, /*mayCache=*/false,
                  guard);
}

void
LvpServer::streamSession(FrameIo &io, Session &session,
                         const OpenRequest &req, std::uint64_t token,
                         bool mayCache, ActiveSessionGuard &guard)
{
    // While streaming, rebuild the declared fingerprint and keep the
    // decoded records so a completed stream can seed the LRU
    // (compressed at insert time). The accumulator's DECODED size is
    // bounded by the LRU budget — a conservative cap, since the
    // compressed copy is strictly smaller, that also bounds the
    // per-session accumulation RAM. A stream that outgrows it just
    // stops being a caching candidate.
    std::vector<ServeRecord> streamed;
    bool accumulate = mayCache && req.fingerprint != 0 &&
                      lru_.maxBytes() > 0;
    std::uint64_t fp = FingerprintSeed;

    // Sessions carry the idle/progress deadline; a peer that cannot
    // deliver one whole frame within it is evicted (and parked, so a
    // merely-slow client can reconnect and resume).
    io.setReadDeadline(opts_.idleMs);
    DeadlineGuard deadlineGuard{io};

    try {
        for (;;) {
            Frame f = io.read(); // EOF mid-session is an error
            switch (f.type) {
              case FrameType::Heartbeat:
                // Keepalive: reading it reset the deadline clock.
                bumpResume("heartbeats");
                break;
              case FrameType::TraceChunk: {
                fp = streamFingerprint(f.payload, fp);
                auto blob = std::make_shared<std::vector<ServeRecord>>(
                    decodeRecords(f.payload));
                serveObs().records.add(blob->size());
                serveObs().chunks.add();
                if (accumulate) {
                    if ((streamed.size() + blob->size()) *
                            sizeof(ServeRecord) >
                        lru_.maxBytes()) {
                        streamed.clear();
                        streamed.shrink_to_fit();
                        accumulate = false;
                    } else {
                        streamed.insert(streamed.end(), blob->begin(),
                                        blob->end());
                    }
                }
                session.push(std::move(blob));
                serveObs().queueDepth.record(session.queueDepth());
                break;
              }
              case FrameType::RunCached: {
                CompressedBlob cached = lru_.get(req.fingerprint);
                if (!cached) {
                    // Raced with eviction since OpenOk said cached. A
                    // reply here would desync the request/reply flow,
                    // so fail the session; the client reconnects and
                    // streams.
                    throw SimError(ErrorKind::RetryExhausted,
                                   "serve: stream no longer cached; "
                                   "reconnect and stream TRACE_CHUNK "
                                   "frames");
                }
                // Expand the compressed entry into this session's
                // private replay copy; a corrupt cache blob throws
                // typed TraceCorrupt instead of skewing statistics.
                TraceBlob blob = decompressServeStream(*cached);
                serveObs().records.add(blob->size());
                serveObs().chunks.add();
                session.push(std::move(blob));
                accumulate = false;
                break;
              }
              case FrameType::Metrics: {
                SessionMetrics m = session.snapshot();
                m.final_ = false;
                io.write(FrameType::MetricsReply, encodeMetrics(m));
                break;
              }
              case FrameType::CloseSession: {
                session.drain();
                if (accumulate && !streamed.empty() &&
                    fp == req.fingerprint) {
                    // Column-compress before insertion: the LRU
                    // budgets compressed bytes, so the cache admits
                    // several times more workloads than the decoded
                    // footprint would.
                    lru_.insert(req.fingerprint,
                                std::make_shared<const CompressedTrace>(
                                    compressServeStream(streamed)));
                }
                SessionMetrics m = session.snapshot();
                m.final_ = true;
                // Free the session slot before the reply goes out: by
                // the time the client reads final_=1, the cap admits
                // its next open.
                guard.release();
                io.write(FrameType::MetricsReply, encodeMetrics(m));
                serveObs().sessionsClosed.add();
                return;
              }
              default:
                throw SimError(ErrorKind::TraceCorrupt,
                               std::string("serve: unexpected ") +
                                   frameTypeName(f.type) +
                                   " inside a session");
            }
        }
    } catch (const SimError &e) {
        // The connection is lost but the work is not: drain what was
        // already received and park the checkpoint so the client can
        // reconnect and ResumeSession. stop() clears the registry, so
        // skip the bookkeeping when we are going down anyway.
        if (!stopping_.load(std::memory_order_relaxed)) {
            if (e.kind() == ErrorKind::Watchdog) {
                bumpResume("heartbeat_timeouts");
                bumpResume("evicted_slow_peers");
            }
            parkSession(session, token);
        }
        throw;
    }
}

void
LvpServer::parkSession(Session &session, std::uint64_t token)
{
    session.drain(); // apply everything already queued first
    Parked parked;
    parked.sessionId = session.id();
    parked.cp = session.checkpoint();
    parked.expiry = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(opts_.resumeTtlMs);
    std::lock_guard<std::mutex> lock(parkMutex_);
    auto now = std::chrono::steady_clock::now();
    for (auto it = parked_.begin(); it != parked_.end();) {
        if (it->second.expiry <= now) {
            bumpResume("expired");
            it = parked_.erase(it);
        } else {
            ++it;
        }
    }
    if (parked_.size() >= opts_.maxParked) {
        // Full: evict the entry closest to expiry (oldest park).
        auto oldest = parked_.begin();
        for (auto it = parked_.begin(); it != parked_.end(); ++it)
            if (it->second.expiry < oldest->second.expiry)
                oldest = it;
        bumpResume("expired");
        parked_.erase(oldest);
    }
    parked_.emplace(token, std::move(parked));
    bumpResume("parked");
}

std::uint64_t
LvpServer::parkedSessions() const
{
    std::lock_guard<std::mutex> lock(parkMutex_);
    return parked_.size();
}

void
LvpServer::unregisterThread(std::uint64_t connId)
{
    std::lock_guard<std::mutex> lock(connMutex_);
    auto it = conns_.find(connId);
    if (it == conns_.end())
        return;
    // A thread cannot join itself; park the handle for stop() and
    // drop the Conn (closing the fd) now.
    finished_.push_back(std::move(it->second.thread));
    conns_.erase(it);
}

void
LvpServer::stop()
{
    std::lock_guard<std::mutex> stopLock(stopMutex_);
    if (!started_)
        return;
    stopping_.store(true, std::memory_order_relaxed);
    if (acceptor_.joinable())
        acceptor_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }

    // Drain window: let in-flight connections finish their sessions
    // and say Goodbye on their own.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(opts_.drainMs);
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(connMutex_);
            if (conns_.empty())
                break;
        }
        if (std::chrono::steady_clock::now() >= deadline) {
            // Past the window: shut the sockets down; handlers see
            // SimError(TraceIo) and unwind through the containment
            // path.
            std::lock_guard<std::mutex> lock(connMutex_);
            for (auto &[id, conn] : conns_)
                conn.io->shutdown();
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    // Handlers unregister themselves as they exit; wait for the map
    // to empty, then join every parked handle.
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(connMutex_);
            if (conns_.empty())
                break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::vector<std::thread> done;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        done.swap(finished_);
    }
    for (std::thread &t : done)
        if (t.joinable())
            t.join();
    {
        // Parked checkpoints hold no threads or fds, just predictor
        // state; the process is going down, so let them go.
        std::lock_guard<std::mutex> lock(parkMutex_);
        parked_.clear();
    }
    if (!opts_.socketPath.empty() && ownListener_)
        ::unlink(opts_.socketPath.c_str());
    started_ = false;
}

} // namespace lvplib::serve

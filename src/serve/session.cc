#include "serve/session.hh"

#include <utility>

#include "core/lvp_unit.hh"
#include "util/logging.hh"

namespace lvplib::serve
{

Session::Session(std::uint64_t id, const core::PredictorInfo &info,
                 std::size_t maxQueuedChunks,
                 const SessionCheckpoint *resume)
    : id_(id), predictorName_(info.name), unit_(info.make()),
      maxQueuedChunks_(maxQueuedChunks == 0 ? 1 : maxQueuedChunks)
{
    lvp_assert(unit_ != nullptr,
               "predictor registry factory returned null");
    if (resume) {
        lvp_assert(resume->predictor == info.name,
                   "resume checkpoint is for predictor '%s', not '%s'",
                   resume->predictor.c_str(), info.name.c_str());
        // Table state restores in place; stats restore as a base the
        // snapshot adds back on (restoreState leaves stats untouched).
        unit_->restoreState(resume->state);
        baseStats_ = resume->stats;
        recordsProcessed_ = resume->recordsProcessed;
        chunksProcessed_ = resume->chunksProcessed;
    }
    worker_ = std::thread([this] { workerLoop(); });
}

Session::~Session()
{
    abort();
    if (worker_.joinable())
        worker_.join();
}

bool
Session::push(TraceBlob chunk)
{
    if (!chunk)
        return true; // nothing to do, not an error
    std::unique_lock<std::mutex> lock(queueMutex_);
    queueNotFull_.wait(lock, [this] {
        return aborted_ || closed_ || queue_.size() < maxQueuedChunks_;
    });
    if (aborted_ || closed_)
        return false;
    queue_.push_back(std::move(chunk));
    queueChanged_.notify_all();
    return true;
}

void
Session::drain()
{
    std::unique_lock<std::mutex> lock(queueMutex_);
    closed_ = true;
    queueChanged_.notify_all();
    queueNotFull_.notify_all();
    queueChanged_.wait(lock, [this] { return workerDone_; });
}

void
Session::abort()
{
    std::lock_guard<std::mutex> lock(queueMutex_);
    aborted_ = true;
    closed_ = true;
    queue_.clear();
    queueChanged_.notify_all();
    queueNotFull_.notify_all();
}

SessionMetrics
Session::snapshot() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    SessionMetrics m;
    m.sessionId = id_;
    m.recordsProcessed = recordsProcessed_;
    m.chunksProcessed = chunksProcessed_;
    // Segment stitching: base (pre-resume) + this incarnation's run.
    // operator+= is the additive identity sharded replay proves sums
    // to exactly one serial pass; for a fresh session the base is
    // zero and this is a plain copy.
    m.stats = baseStats_;
    m.stats += unit_->stats();
    return m;
}

SessionCheckpoint
Session::checkpoint() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    SessionCheckpoint cp;
    cp.predictor = predictorName_;
    cp.state = unit_->snapshotState();
    cp.stats = baseStats_;
    cp.stats += unit_->stats();
    cp.recordsProcessed = recordsProcessed_;
    cp.chunksProcessed = chunksProcessed_;
    return cp;
}

std::size_t
Session::queueDepth() const
{
    std::lock_guard<std::mutex> lock(queueMutex_);
    return queue_.size();
}

void
Session::workerLoop()
{
    for (;;) {
        TraceBlob chunk;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueChanged_.wait(lock, [this] {
                return aborted_ || closed_ || !queue_.empty();
            });
            if (aborted_ || (closed_ && queue_.empty()))
                break;
            chunk = std::move(queue_.front());
            queue_.pop_front();
            queueNotFull_.notify_all();
        }
        // One chunk is one critical section: METRICS snapshots always
        // observe a chunk boundary, never a half-fed chunk.
        std::lock_guard<std::mutex> lock(statsMutex_);
        for (const ServeRecord &rec : *chunk) {
            switch (static_cast<ServeKind>(rec.kind)) {
              case ServeKind::Load:
                unit_->onLoad(rec.pc, rec.addr, rec.value, rec.size);
                break;
              case ServeKind::Store:
                unit_->onStore(rec.addr, rec.size);
                break;
              case ServeKind::Branch:
                unit_->onBranch(rec.taken != 0);
                break;
            }
        }
        recordsProcessed_ += chunk->size();
        ++chunksProcessed_;
    }
    std::lock_guard<std::mutex> lock(queueMutex_);
    workerDone_ = true;
    queueChanged_.notify_all();
}

} // namespace lvplib::serve

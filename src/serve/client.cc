#include "serve/client.hh"

#include <cerrno>
#include <cstring>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/logging.hh"

namespace lvplib::serve
{

namespace
{

[[noreturn]] void
connectError(const std::string &what, int err)
{
    throw SimError(ErrorKind::TraceIo,
                   "serve client: " + what + ": " + std::strerror(err));
}

} // namespace

ServeClient::ServeClient(int fd, std::uint64_t maxFrameBytes,
                         std::uint64_t chaosKey)
    : io_(fd, maxFrameBytes, chaosKey)
{
}

ServeClient
ServeClient::connectUnix(const std::string &path,
                         std::uint64_t maxFrameBytes)
{
    if (path.size() >= sizeof(sockaddr_un{}.sun_path))
        throw SimError(ErrorKind::TraceIo,
                       "serve client: unix socket path too long: " +
                           path);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        connectError("socket(AF_UNIX) failed", errno);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        int err = errno;
        ::close(fd);
        connectError("connect(" + path + ") failed", err);
    }
    return ServeClient(fd, maxFrameBytes);
}

ServeClient
ServeClient::connectTcp(std::uint16_t port, std::uint64_t maxFrameBytes)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        connectError("socket(AF_INET) failed", errno);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        int err = errno;
        ::close(fd);
        connectError("connect(port " + std::to_string(port) + ") failed",
                     err);
    }
    return ServeClient(fd, maxFrameBytes);
}

Frame
ServeClient::expect(FrameType want)
{
    Frame f = io_.read();
    if (f.type == FrameType::Error) {
        std::string message;
        ErrorKind kind = decodeError(f.payload, message);
        throw SimError(kind, "server: " + message);
    }
    if (f.type != want)
        throw SimError(ErrorKind::TraceCorrupt,
                       std::string("serve client: expected ") +
                           frameTypeName(want) + ", got " +
                           frameTypeName(f.type));
    return f;
}

void
ServeClient::hello()
{
    io_.write(FrameType::Hello, encodeHello(ProtocolVersion));
    Frame f = expect(FrameType::HelloOk);
    std::uint16_t version = decodeHello(f.payload, "HELLO_OK");
    if (version != ProtocolVersion)
        throw SimError(ErrorKind::TraceCorrupt,
                       "serve client: server speaks protocol version " +
                           std::to_string(version) + ", want " +
                           std::to_string(ProtocolVersion));
}

ServeClient::OpenResult
ServeClient::open(const OpenRequest &req)
{
    io_.write(FrameType::OpenSession, encodeOpen(req));
    Frame f = expect(FrameType::OpenOk);
    OpenResult r;
    decodeOpenOk(f.payload, r.sessionId, r.cached, r.resumeToken);
    return r;
}

ResumeReply
ServeClient::resume(std::uint64_t sessionId, std::uint64_t token)
{
    ResumeRequest req;
    req.sessionId = sessionId;
    req.token = token;
    io_.write(FrameType::ResumeSession, encodeResume(req));
    return decodeResumeOk(expect(FrameType::ResumeOk).payload);
}

void
ServeClient::heartbeat()
{
    io_.write(FrameType::Heartbeat, {});
}

void
ServeClient::sendChunk(std::span<const ServeRecord> records)
{
    std::vector<std::uint8_t> payload;
    payload.reserve(records.size() * ServeRecordBytes);
    for (const ServeRecord &rec : records)
        encodeRecord(rec, payload);
    io_.write(FrameType::TraceChunk, payload);
}

void
ServeClient::sendChunkRaw(std::span<const std::uint8_t> payload)
{
    io_.write(FrameType::TraceChunk, payload);
}

void
ServeClient::runCached()
{
    io_.write(FrameType::RunCached, {});
}

SessionMetrics
ServeClient::metrics()
{
    io_.write(FrameType::Metrics, {});
    return decodeMetrics(expect(FrameType::MetricsReply).payload);
}

SessionMetrics
ServeClient::closeSession()
{
    io_.write(FrameType::CloseSession, {});
    return decodeMetrics(expect(FrameType::MetricsReply).payload);
}

void
ServeClient::goodbye()
{
    io_.write(FrameType::Goodbye, {});
    expect(FrameType::Goodbye);
    io_.shutdown();
}

void
ServeClient::abortConnection()
{
    io_.shutdown();
}

} // namespace lvplib::serve

#include "serve/loadgen.hh"

#include <sstream>
#include <utility>

namespace lvplib::serve
{

void
ServeRecordEncoder::consume(const trace::TraceRecord &rec)
{
    const auto &inst = *rec.inst;
    ServeRecord out;
    if (inst.load()) {
        out.kind = static_cast<std::uint8_t>(ServeKind::Load);
        out.size = static_cast<std::uint8_t>(inst.accessSize());
        out.pc = rec.pc;
        out.addr = rec.effAddr;
        out.value = rec.value;
    } else if (inst.store()) {
        out.kind = static_cast<std::uint8_t>(ServeKind::Store);
        out.size = static_cast<std::uint8_t>(inst.accessSize());
        out.pc = rec.pc;
        out.addr = rec.effAddr;
    } else if (inst.branch()) {
        out.kind = static_cast<std::uint8_t>(ServeKind::Branch);
        out.taken = rec.taken ? 1 : 0;
        out.pc = rec.pc;
    } else {
        return; // not predictor-relevant; not part of the stream
    }
    encodeRecord(out, bytes_);
    ++records_;
}

std::shared_ptr<const LoadStream>
StreamLibrary::get(const workloads::Workload &w, workloads::CodeGen cg,
                   unsigned scale, const sim::RunConfig &rc)
{
    std::ostringstream key;
    key << w.name << '|' << workloads::codeGenName(cg) << '|' << scale
        << '|' << rc.maxInstructions;

    std::shared_future<std::shared_ptr<const LoadStream>> fut;
    bool owner = false;
    std::promise<std::shared_ptr<const LoadStream>> prom;
    {
        std::lock_guard<std::mutex> lock(m_);
        auto it = streams_.find(key.str());
        if (it == streams_.end()) {
            owner = true;
            fut = prom.get_future().share();
            streams_.emplace(key.str(), fut);
        } else {
            fut = it->second;
        }
    }
    if (owner) {
        try {
            ServeRecordEncoder enc;
            cache_.replayShared(w, cg, scale, rc, enc);
            auto stream = std::make_shared<LoadStream>();
            stream->workload = w.name;
            stream->records = enc.records();
            stream->bytes = enc.takeBytes();
            stream->fingerprint = streamFingerprint(stream->bytes);
            prom.set_value(std::move(stream));
        } catch (...) {
            // Do not memoize the failure: drop the entry so a later
            // request retries, then propagate to current waiters.
            prom.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(m_);
            streams_.erase(key.str());
        }
    }
    return fut.get();
}

core::LvpStats
expectedStats(sim::RunCache &cache, const workloads::Workload &w,
              workloads::CodeGen cg, unsigned scale,
              const sim::RunConfig &rc, const core::PredictorInfo &info)
{
    return cache.predictorOnly(w, cg, scale, info, rc);
}

} // namespace lvplib::serve

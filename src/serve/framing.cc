#include "serve/framing.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "chaos/chaos.hh"

namespace lvplib::serve
{

namespace
{

using Clock = std::chrono::steady_clock;

[[noreturn]] void
ioError(const char *what, int err)
{
    throw SimError(ErrorKind::TraceIo,
                   std::string("serve: ") + what + ": " +
                       (err ? std::strerror(err)
                            : "connection closed mid-frame"));
}

} // namespace

FrameIo::FrameIo(int fd, std::uint64_t maxPayloadBytes,
                 std::uint64_t chaosKey)
    : fd_(fd),
      maxPayloadBytes_(
          std::min(maxPayloadBytes, HardMaxFramePayloadBytes)),
      chaosKey_(chaosKey)
{
}

FrameIo::~FrameIo()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
FrameIo::maybeInject(bool writing)
{
    auto &eng = chaos::engine();
    std::uint64_t n = frames_++;
    if (!eng.enabled())
        return;
    if (eng.shouldInject(chaos::Point::ServeFrame, chaosKey_, n))
        throw SimError(ErrorKind::Injected,
                       "serve: injected frame fault");
    if (eng.shouldInject(chaos::Point::ServeConnReset, chaosKey_, n)) {
        // A real RST: the peer's next read/write fails too, not just
        // ours — both sides exercise their containment paths.
        if (fd_ >= 0)
            ::shutdown(fd_, SHUT_RDWR);
        throw SimError(ErrorKind::Injected,
                       "serve: injected connection reset");
    }
    (void)writing;
}

std::size_t
FrameIo::readFull(void *buf, std::size_t n, bool eofOk,
                  Clock::time_point deadline)
{
    auto *p = static_cast<std::uint8_t *>(buf);
    std::size_t got = 0;
    while (got < n) {
        if (deadline != Clock::time_point::max()) {
            auto now = Clock::now();
            if (now >= deadline)
                throw SimError(
                    ErrorKind::Watchdog,
                    "serve: peer made no frame progress within " +
                        std::to_string(readDeadlineMs_) + " ms");
            auto leftMs =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - now)
                    .count() +
                1;
            pollfd pfd{fd_, POLLIN, 0};
            int r = ::poll(&pfd, 1,
                           static_cast<int>(std::min<long long>(
                               leftMs, 1000)));
            if (r < 0) {
                if (errno == EINTR)
                    continue;
                ioError("poll failed", errno);
            }
            if (r == 0)
                continue; // re-check the deadline
            // POLLHUP/POLLERR fall through: read() reports EOF or
            // the error itself.
        }
        ssize_t r = ::read(fd_, p + got, n - got);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            ioError("read failed", errno);
        }
        if (r == 0) {
            if (got == 0 && eofOk)
                return 0;
            ioError("short frame", 0);
        }
        got += static_cast<std::size_t>(r);
    }
    return got;
}

void
FrameIo::writeFull(const void *buf, std::size_t n)
{
    auto *p = static_cast<const std::uint8_t *>(buf);
    std::size_t put = 0;
    while (put < n) {
        // MSG_NOSIGNAL: a vanished peer must surface as SimError
        // (EPIPE), not as a process-killing SIGPIPE.
        ssize_t r = ::send(fd_, p + put, n - put, MSG_NOSIGNAL);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            ioError("write failed", errno);
        }
        put += static_cast<std::size_t>(r);
    }
}

bool
FrameIo::readOrEof(Frame &out)
{
    maybeInject(/*writing=*/false);
    auto deadline = readDeadlineMs_ == 0
                        ? Clock::time_point::max()
                        : Clock::now() + std::chrono::milliseconds(
                                             readDeadlineMs_);
    std::uint8_t header[FrameHeaderBytes];
    if (readFull(header, sizeof header, /*eofOk=*/true, deadline) == 0)
        return false;
    std::uint64_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint64_t>(header[i]) << (8 * i);
    if (len > maxPayloadBytes_)
        throw SimError(ErrorKind::TraceCorrupt,
                       "serve: frame payload of " + std::to_string(len) +
                           " bytes exceeds the " +
                           std::to_string(maxPayloadBytes_) +
                           "-byte limit");
    out.type = static_cast<FrameType>(header[4]);
    out.payload.resize(len);
    if (len)
        readFull(out.payload.data(), len, /*eofOk=*/false, deadline);
    return true;
}

Frame
FrameIo::read()
{
    Frame f;
    if (!readOrEof(f))
        ioError("connection closed", 0);
    return f;
}

void
FrameIo::write(FrameType type, std::span<const std::uint8_t> payload)
{
    maybeInject(/*writing=*/true);
    std::uint8_t header[FrameHeaderBytes];
    std::uint64_t len = payload.size();
    for (int i = 0; i < 4; ++i)
        header[i] = static_cast<std::uint8_t>(len >> (8 * i));
    header[4] = static_cast<std::uint8_t>(type);
    bool torn = !payload.empty() &&
                chaos::engine().shouldInject(
                    chaos::Point::ServeTornWrite, chaosKey_, frames_++);
    writeFull(header, sizeof header);
    if (torn) {
        // Half the payload actually reaches the wire, then the
        // connection dies: the peer sees a short frame, we see a
        // typed injected fault.
        writeFull(payload.data(), payload.size() / 2);
        if (fd_ >= 0)
            ::shutdown(fd_, SHUT_RDWR);
        throw SimError(ErrorKind::Injected,
                       "serve: injected torn mid-frame write");
    }
    if (!payload.empty())
        writeFull(payload.data(), payload.size());
}

void
FrameIo::shutdown()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

} // namespace lvplib::serve

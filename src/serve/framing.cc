#include "serve/framing.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "chaos/chaos.hh"

namespace lvplib::serve
{

namespace
{

[[noreturn]] void
ioError(const char *what, int err)
{
    throw SimError(ErrorKind::TraceIo,
                   std::string("serve: ") + what + ": " +
                       (err ? std::strerror(err)
                            : "connection closed mid-frame"));
}

} // namespace

FrameIo::FrameIo(int fd, std::uint64_t maxPayloadBytes,
                 std::uint64_t chaosKey)
    : fd_(fd), maxPayloadBytes_(maxPayloadBytes), chaosKey_(chaosKey)
{
}

FrameIo::~FrameIo()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
FrameIo::maybeInject()
{
    if (chaos::engine().shouldInject(chaos::Point::ServeFrame,
                                     chaosKey_, frames_++))
        throw SimError(ErrorKind::Injected,
                       "serve: injected frame fault");
}

std::size_t
FrameIo::readFull(void *buf, std::size_t n, bool eofOk)
{
    auto *p = static_cast<std::uint8_t *>(buf);
    std::size_t got = 0;
    while (got < n) {
        ssize_t r = ::read(fd_, p + got, n - got);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            ioError("read failed", errno);
        }
        if (r == 0) {
            if (got == 0 && eofOk)
                return 0;
            ioError("short frame", 0);
        }
        got += static_cast<std::size_t>(r);
    }
    return got;
}

void
FrameIo::writeFull(const void *buf, std::size_t n)
{
    auto *p = static_cast<const std::uint8_t *>(buf);
    std::size_t put = 0;
    while (put < n) {
        // MSG_NOSIGNAL: a vanished peer must surface as SimError
        // (EPIPE), not as a process-killing SIGPIPE.
        ssize_t r = ::send(fd_, p + put, n - put, MSG_NOSIGNAL);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            ioError("write failed", errno);
        }
        put += static_cast<std::size_t>(r);
    }
}

bool
FrameIo::readOrEof(Frame &out)
{
    maybeInject();
    std::uint8_t header[FrameHeaderBytes];
    if (readFull(header, sizeof header, /*eofOk=*/true) == 0)
        return false;
    std::uint64_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint64_t>(header[i]) << (8 * i);
    if (len > maxPayloadBytes_)
        throw SimError(ErrorKind::TraceCorrupt,
                       "serve: frame payload of " + std::to_string(len) +
                           " bytes exceeds the " +
                           std::to_string(maxPayloadBytes_) +
                           "-byte limit");
    out.type = static_cast<FrameType>(header[4]);
    out.payload.resize(len);
    if (len)
        readFull(out.payload.data(), len, /*eofOk=*/false);
    return true;
}

Frame
FrameIo::read()
{
    Frame f;
    if (!readOrEof(f))
        ioError("connection closed", 0);
    return f;
}

void
FrameIo::write(FrameType type, std::span<const std::uint8_t> payload)
{
    maybeInject();
    std::uint8_t header[FrameHeaderBytes];
    std::uint64_t len = payload.size();
    for (int i = 0; i < 4; ++i)
        header[i] = static_cast<std::uint8_t>(len >> (8 * i));
    header[4] = static_cast<std::uint8_t>(type);
    writeFull(header, sizeof header);
    if (!payload.empty())
        writeFull(payload.data(), payload.size());
}

void
FrameIo::shutdown()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

} // namespace lvplib::serve

/**
 * @file
 * The server's hot-trace cache: a byte-bounded LRU of
 * column-compressed, immutable ServeRecord streams keyed by stream
 * fingerprint.
 *
 * Many concurrent sessions replay the same handful of workloads (the
 * 17-benchmark suite from N simulated users); the first session to
 * stream a trace pays the transfer, every later session opening the
 * same fingerprint replays the server's copy (RunCached) without
 * moving a byte over the socket. Entries are stored compressed
 * (serve::compressServeStream) and expanded per replaying session, so
 * the budget admits several times more workloads than the decoded
 * footprint would. Entries are shared_ptr, so an eviction never
 * invalidates a replay in flight — the blob dies when the last
 * replaying session drops it.
 *
 * All methods are thread-safe. Effectiveness publishes as volatile
 * serve.lru.* metrics (hits, misses, insertions, evictions, resident
 * bytes).
 */

#ifndef LVPLIB_SERVE_TRACE_LRU_HH
#define LVPLIB_SERVE_TRACE_LRU_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "serve/protocol.hh"

namespace lvplib::serve
{

/** Byte-bounded LRU of hot traces; see file comment. */
class TraceLru
{
  public:
    /** @param maxBytes Eviction threshold; 0 disables caching
     *  entirely (every lookup misses, every insert is dropped). */
    explicit TraceLru(std::uint64_t maxBytes);

    /** Look up @p fingerprint, refreshing its recency on a hit.
     *  @return the blob, or nullptr on a miss. */
    CompressedBlob get(std::uint64_t fingerprint);

    /** Peek without touching recency or the hit/miss counters (the
     *  OpenSession "cached?" probe). */
    bool contains(std::uint64_t fingerprint) const;

    /**
     * Insert @p blob under @p fingerprint, evicting
     * least-recently-used entries until the budget holds. A blob
     * bigger than the whole budget is not cached. Re-inserting an
     * existing key refreshes recency and keeps the original blob.
     */
    void insert(std::uint64_t fingerprint, CompressedBlob blob);

    std::uint64_t maxBytes() const { return maxBytes_; }

    /** @{ Point-in-time observability. */
    std::uint64_t bytes() const;
    std::size_t entries() const;
    std::uint64_t hits() const;
    std::uint64_t misses() const;
    std::uint64_t evictions() const;
    /** @} */

    /** Bytes one blob accounts for against the budget (its
     *  compressed size). */
    static std::uint64_t
    blobBytes(const CompressedBlob &blob)
    {
        return blob ? blob->bytes.size() : 0;
    }

  private:
    struct Entry
    {
        std::uint64_t fingerprint;
        CompressedBlob blob;
    };

    void evictToFit(); ///< caller holds m_

    const std::uint64_t maxBytes_;
    mutable std::mutex m_;
    std::list<Entry> lru_; ///< front = most recent
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
    std::uint64_t bytes_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace lvplib::serve

#endif // LVPLIB_SERVE_TRACE_LRU_HH

/**
 * @file
 * Command-line front ends for the lvpserve daemon and the lvpload
 * load generator. Parsing is a library function (unit-tested in
 * serve_protocol_test) and the tools are thin main()s, mirroring
 * sim/cli.hh. Defaults come from ServeOptions::fromEnv(), so every
 * LVPLIB_SERVE_* knob applies to both tools and explicit flags win
 * over the environment.
 */

#ifndef LVPLIB_SERVE_SERVE_CLI_HH
#define LVPLIB_SERVE_SERVE_CLI_HH

#include <optional>
#include <string>
#include <vector>

#include "serve/server.hh"

namespace lvplib::serve
{

/** Parsed lvpserve command line. */
struct ServeCliOptions
{
    ServeOptions server; ///< env-seeded, then flag-overridden
    /** --workers N (or LVPLIB_SERVE_WORKERS): fork N supervised
     *  worker processes behind the one endpoint. 1 = classic
     *  single-process daemon, no fork. */
    unsigned workers = 1;
    /** --chaos SEED[,PERIOD]: arm chaos::ServePoints in every worker
     *  (0 = off). Only meaningful with --workers >= 2 for the
     *  worker-kill point; frame faults fire regardless. */
    std::uint64_t chaosSeed = 0;
    std::uint64_t chaosPeriod = 64;
    bool help = false;
};

/**
 * Parse lvpserve argv. Every failure names the offending token in
 * @p error ("unknown option '--x'", "bad --port value '99999'").
 * @return std::nullopt plus a message in @p error on bad input.
 */
std::optional<ServeCliOptions>
parseServeCli(const std::vector<std::string> &args, std::string &error);

/** lvpserve usage text. */
std::string serveUsage();

/** Parsed lvpload command line. */
struct LoadCliOptions
{
    std::string socketPath;   ///< --socket PATH (unix)
    std::uint16_t port = 0;   ///< --port N (TCP)
    unsigned users = 8;       ///< --users N concurrent clients
    unsigned scale = 1;       ///< --scale for every workload
    unsigned chunkRecords = 4096; ///< --chunk-records per TRACE_CHUNK
    /** --predictors LIST: comma-separated registry names cycled
     *  across users ("" = the whole registry). */
    std::string predictors;
    /** --workloads LIST: comma-separated benchmark names ("" = the
     *  full suite). */
    std::string workloads;
    bool verify = true; ///< cleared by --no-verify (skip offline oracle)
    /** --chaos SEED: run the fault-tolerance soak — seeded client
     *  crashes mid-stream, reconnect-and-resume with fresh-session
     *  fallback, client-side frame chaos, an fd-leak check, and a
     *  byte-reproducible per-seed report (0 = off). */
    std::uint64_t chaosSeed = 0;
    bool help = false;
};

/** Parse lvpload argv; same error contract as parseServeCli. */
std::optional<LoadCliOptions>
parseLoadCli(const std::vector<std::string> &args, std::string &error);

/** lvpload usage text. */
std::string loadUsage();

} // namespace lvplib::serve

#endif // LVPLIB_SERVE_SERVE_CLI_HH

/**
 * @file
 * LvpServer: the long-running lvp-serve daemon core.
 *
 * One acceptor thread listens on a unix-domain or TCP socket; each
 * accepted connection gets a handler thread that speaks the framed
 * protocol (serve/protocol.hh) and may open one session after another.
 * Sessions are fully isolated per-client predictor instances
 * (serve/session.hh); immutable hot traces are shared through a
 * byte-bounded LRU (serve/trace_lru.hh).
 *
 * Failure containment: any SimError on a connection — a malformed
 * frame, a hung-up peer, an injected ServeFrame fault — tears down
 * that connection and its in-flight session only. The server replies
 * with a typed Error frame on a best-effort basis, counts
 * serve.frame_errors, and keeps serving everyone else; the chaos soak
 * test asserts surviving sessions' statistics stay exact.
 *
 * Fault tolerance: a session that dies with its connection is not
 * discarded — it is *parked*: the handler drains the chunks already
 * received, checkpoints the predictor (snapshotState + stats + record
 * offset), and keys the checkpoint by the resume token issued in
 * OpenOk. A client that reconnects and sends ResumeSession gets the
 * session back, is told the record offset to continue from
 * (ResumeOk), and finishes with stats byte-identical to an
 * uninterrupted run. Parked sessions are bounded (count and TTL).
 * Sessions also carry a per-frame read deadline: a peer that stalls
 * past --idle-ms is evicted (typed Watchdog error) — and parked, so
 * a merely-slow client can still come back.
 *
 * stop() is the graceful drain: stop accepting, give in-flight
 * connections a drain window to finish naturally, then shut their
 * sockets down and join every thread. The lvpserve tool wires SIGTERM
 * and SIGINT to it.
 *
 * Telemetry (all volatile serve.* entries in the PR 3 registry):
 * connections accepted, sessions opened/closed, active-session gauge,
 * records and chunks processed, frame errors, per-chunk queue-depth
 * distribution, plus the serve.lru.* family from TraceLru. The
 * serve.resume.* family (parked/resumed/rejected/expired sessions,
 * heartbeats, heartbeat timeouts, evicted slow peers) registers
 * lazily on first event so a fault-free run's metrics JSON is
 * byte-identical to one built before this feature existed.
 */

#ifndef LVPLIB_SERVE_SERVER_HH
#define LVPLIB_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/framing.hh"
#include "serve/session.hh"
#include "serve/trace_lru.hh"

namespace lvplib::serve
{

/** Active-session slot ownership (defined in server.cc). */
struct ActiveSessionGuard;

/** Everything the daemon needs to know, CLI- and env-configurable. */
struct ServeOptions
{
    std::string socketPath;      ///< unix socket path ("" = use TCP)
    std::uint16_t port = 0;      ///< TCP port (0 with a path = unix)
    std::uint64_t maxSessions = 64;  ///< concurrent session cap
    std::uint64_t lruBytes = 256ull << 20; ///< hot-trace LRU budget
    std::uint64_t queueChunks = 8;   ///< per-session bounded queue
    std::uint64_t maxFrameBytes = 16ull << 20; ///< payload size cap
    std::uint64_t drainMs = 2000;    ///< stop(): natural-finish window
    std::uint64_t idleMs = 30000; ///< per-frame read deadline inside a
                                  ///< session (0 = never evict)
    std::uint64_t resumeTtlMs = 30000; ///< parked-session lifetime
    std::uint64_t maxParked = 64;      ///< parked-session cap
    /**
     * Adopt this already-bound, already-listening socket instead of
     * creating one (-1 = create our own). How supervised workers
     * share one endpoint: the supervisor binds before forking and
     * every worker accepts on the inherited fd. The adopter closes
     * its copy of the fd on stop() but never unlinks a unix socket
     * path it did not create.
     */
    int listenFd = -1;
    /**
     * Index of this worker under a supervisor (-1 = standalone).
     * Gates the Point::ServeWorkerKill chaos site: killing the only
     * process would be an outage, killing a supervised worker is a
     * recoverable fault the supervisor must absorb.
     */
    int workerIndex = -1;

    /**
     * Overlay the strict LVPLIB_SERVE_* environment knobs onto @p
     * base: LVPLIB_SERVE_SOCKET, LVPLIB_SERVE_PORT,
     * LVPLIB_SERVE_MAX_SESSIONS, LVPLIB_SERVE_LRU_BYTES,
     * LVPLIB_SERVE_QUEUE_CHUNKS, LVPLIB_SERVE_IDLE_MS,
     * LVPLIB_SERVE_RESUME_TTL_MS, LVPLIB_SERVE_MAX_PARKED. Numeric
     * values parse via util/env.hh (garbage warns and is ignored,
     * never coerced).
     */
    static ServeOptions fromEnv(ServeOptions base);
    static ServeOptions fromEnv();
};

/**
 * Bind and listen on the endpoint @p opts names (unix socket wins
 * over TCP), resolving an ephemeral TCP port into @p boundPort.
 * @return the listening fd. @throws SimError(TraceIo) on failure.
 * Factored out of LvpServer::start() so the lvpserve supervisor can
 * create the shared socket before forking workers.
 */
int openListenSocket(const ServeOptions &opts, std::uint16_t &boundPort);

/** The serving daemon; see file comment. */
class LvpServer
{
  public:
    explicit LvpServer(ServeOptions opts);

    /** stop()s if still running. */
    ~LvpServer();

    LvpServer(const LvpServer &) = delete;
    LvpServer &operator=(const LvpServer &) = delete;

    /**
     * Bind, listen, and start the acceptor thread.
     * @throws SimError(TraceIo) when the endpoint cannot be bound.
     */
    void start();

    /** Graceful drain; idempotent. Safe from a signal-woken thread. */
    void stop();

    /** Bound TCP port (after start(); resolves port 0 to the kernel's
     *  ephemeral pick — how tests avoid port collisions). */
    std::uint16_t boundPort() const { return boundPort_; }

    /** Human-readable bound endpoint, e.g. "unix:/tmp/lvp.sock". */
    std::string endpoint() const;

    const ServeOptions &options() const { return opts_; }
    TraceLru &lru() { return lru_; }

    /** Sessions currently open across all connections. */
    std::uint64_t activeSessions() const
    {
        return activeSessions_.load(std::memory_order_relaxed);
    }

    /** Connections accepted over the server's lifetime. */
    std::uint64_t connectionsAccepted() const
    {
        return connections_.load(std::memory_order_relaxed);
    }

    /** Sessions currently parked awaiting a ResumeSession. */
    std::uint64_t parkedSessions() const;

  private:
    struct Conn
    {
        std::unique_ptr<FrameIo> io;
        std::thread thread;
    };

    /** A checkpointed session awaiting its client's return. */
    struct Parked
    {
        std::uint64_t sessionId = 0;
        SessionCheckpoint cp;
        std::chrono::steady_clock::time_point expiry;
    };

    void acceptLoop();
    void handleConnection(std::uint64_t connId);
    /** One session from OpenSession to CloseSession on @p io. */
    void runSession(FrameIo &io, const Frame &openFrame);
    /** Revive a parked session from a ResumeSession frame. */
    void runResumedSession(FrameIo &io, const Frame &resumeFrame);
    /** The shared per-session frame loop (stream/metrics/close).
     *  @p guard owns the active-session slot; a clean close releases
     *  it before the final reply is written. */
    void streamSession(FrameIo &io, Session &session,
                       const OpenRequest &req, std::uint64_t token,
                       bool mayCache, ActiveSessionGuard &guard);
    /** Drain @p session and park its checkpoint under @p token. */
    void parkSession(Session &session, std::uint64_t token);
    void unregisterThread(std::uint64_t connId);

    ServeOptions opts_;
    TraceLru lru_;

    int listenFd_ = -1;
    bool ownListener_ = true; ///< false when opts_.listenFd adopted
    std::uint16_t boundPort_ = 0;
    std::atomic<bool> stopping_{false};
    bool started_ = false;
    std::mutex stopMutex_; ///< serializes start()/stop()
    std::thread acceptor_;

    mutable std::mutex connMutex_;
    std::map<std::uint64_t, Conn> conns_;
    std::vector<std::thread> finished_; ///< joined in stop()
    std::uint64_t nextConnId_ = 1;

    mutable std::mutex parkMutex_;
    std::map<std::uint64_t, Parked> parked_; ///< keyed by resume token

    std::atomic<std::uint64_t> nextSessionId_{1};
    std::atomic<std::uint64_t> nextToken_{1};
    std::atomic<std::uint64_t> activeSessions_{0};
    std::atomic<std::uint64_t> connections_{0};
};

} // namespace lvplib::serve

#endif // LVPLIB_SERVE_SERVER_HH

/**
 * @file
 * LvpServer: the long-running lvp-serve daemon core.
 *
 * One acceptor thread listens on a unix-domain or TCP socket; each
 * accepted connection gets a handler thread that speaks the framed
 * protocol (serve/protocol.hh) and may open one session after another.
 * Sessions are fully isolated per-client predictor instances
 * (serve/session.hh); immutable hot traces are shared through a
 * byte-bounded LRU (serve/trace_lru.hh).
 *
 * Failure containment: any SimError on a connection — a malformed
 * frame, a hung-up peer, an injected ServeFrame fault — tears down
 * that connection and its in-flight session only. The server replies
 * with a typed Error frame on a best-effort basis, counts
 * serve.frame_errors, and keeps serving everyone else; the chaos soak
 * test asserts surviving sessions' statistics stay exact.
 *
 * stop() is the graceful drain: stop accepting, give in-flight
 * connections a drain window to finish naturally, then shut their
 * sockets down and join every thread. The lvpserve tool wires SIGTERM
 * and SIGINT to it.
 *
 * Telemetry (all volatile serve.* entries in the PR 3 registry):
 * connections accepted, sessions opened/closed, active-session gauge,
 * records and chunks processed, frame errors, per-chunk queue-depth
 * distribution, plus the serve.lru.* family from TraceLru.
 */

#ifndef LVPLIB_SERVE_SERVER_HH
#define LVPLIB_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/framing.hh"
#include "serve/trace_lru.hh"

namespace lvplib::serve
{

/** Everything the daemon needs to know, CLI- and env-configurable. */
struct ServeOptions
{
    std::string socketPath;      ///< unix socket path ("" = use TCP)
    std::uint16_t port = 0;      ///< TCP port (0 with a path = unix)
    std::uint64_t maxSessions = 64;  ///< concurrent session cap
    std::uint64_t lruBytes = 256ull << 20; ///< hot-trace LRU budget
    std::uint64_t queueChunks = 8;   ///< per-session bounded queue
    std::uint64_t maxFrameBytes = 16ull << 20; ///< payload size cap
    std::uint64_t drainMs = 2000;    ///< stop(): natural-finish window

    /**
     * Overlay the strict LVPLIB_SERVE_* environment knobs onto @p
     * base: LVPLIB_SERVE_SOCKET, LVPLIB_SERVE_PORT,
     * LVPLIB_SERVE_MAX_SESSIONS, LVPLIB_SERVE_LRU_BYTES,
     * LVPLIB_SERVE_QUEUE_CHUNKS. Numeric values parse via
     * util/env.hh (garbage warns and is ignored, never coerced).
     */
    static ServeOptions fromEnv(ServeOptions base);
    static ServeOptions fromEnv();
};

/** The serving daemon; see file comment. */
class LvpServer
{
  public:
    explicit LvpServer(ServeOptions opts);

    /** stop()s if still running. */
    ~LvpServer();

    LvpServer(const LvpServer &) = delete;
    LvpServer &operator=(const LvpServer &) = delete;

    /**
     * Bind, listen, and start the acceptor thread.
     * @throws SimError(TraceIo) when the endpoint cannot be bound.
     */
    void start();

    /** Graceful drain; idempotent. Safe from a signal-woken thread. */
    void stop();

    /** Bound TCP port (after start(); resolves port 0 to the kernel's
     *  ephemeral pick — how tests avoid port collisions). */
    std::uint16_t boundPort() const { return boundPort_; }

    /** Human-readable bound endpoint, e.g. "unix:/tmp/lvp.sock". */
    std::string endpoint() const;

    const ServeOptions &options() const { return opts_; }
    TraceLru &lru() { return lru_; }

    /** Sessions currently open across all connections. */
    std::uint64_t activeSessions() const
    {
        return activeSessions_.load(std::memory_order_relaxed);
    }

    /** Connections accepted over the server's lifetime. */
    std::uint64_t connectionsAccepted() const
    {
        return connections_.load(std::memory_order_relaxed);
    }

  private:
    struct Conn
    {
        std::unique_ptr<FrameIo> io;
        std::thread thread;
    };

    void acceptLoop();
    void handleConnection(std::uint64_t connId);
    /** One session from OpenSession to CloseSession on @p io. */
    void runSession(FrameIo &io, const Frame &openFrame);
    void unregisterThread(std::uint64_t connId);

    ServeOptions opts_;
    TraceLru lru_;

    int listenFd_ = -1;
    std::uint16_t boundPort_ = 0;
    std::atomic<bool> stopping_{false};
    bool started_ = false;
    std::mutex stopMutex_; ///< serializes start()/stop()
    std::thread acceptor_;

    mutable std::mutex connMutex_;
    std::map<std::uint64_t, Conn> conns_;
    std::vector<std::thread> finished_; ///< joined in stop()
    std::uint64_t nextConnId_ = 1;

    std::atomic<std::uint64_t> nextSessionId_{1};
    std::atomic<std::uint64_t> activeSessions_{0};
    std::atomic<std::uint64_t> connections_{0};
};

} // namespace lvplib::serve

#endif // LVPLIB_SERVE_SERVER_HH

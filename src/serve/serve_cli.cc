#include "serve/serve_cli.hh"

#include <cstdlib>
#include <limits>
#include <sstream>

#include "core/value_predictor.hh"
#include "util/env.hh"
#include "workloads/workload.hh"

namespace lvplib::serve
{

namespace
{

/** Validate a comma-separated name list with @p known, naming the
 *  first unknown entry in @p error. */
template <typename KnownFn>
bool
validateNameList(const std::string &list, const char *what,
                 KnownFn known, std::string &error)
{
    std::string rest = list;
    bool any = false;
    while (!rest.empty()) {
        auto comma = rest.find(',');
        std::string name = rest.substr(0, comma);
        rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
        if (name.empty())
            continue;
        if (!known(name)) {
            error = std::string("unknown ") + what + " '" + name + "'";
            return false;
        }
        any = true;
    }
    if (!any) {
        error = std::string("bad --") + what + "s value '" + list + "'";
        return false;
    }
    return true;
}

bool
knownWorkload(const std::string &name)
{
    for (const auto &w : workloads::allWorkloads())
        if (w.name == name)
            return true;
    return false;
}

} // namespace

namespace
{

/** Parse a --chaos value: "SEED" or "SEED,PERIOD". */
bool
parseChaosValue(const std::string &v, std::uint64_t &seed,
                std::uint64_t &period, std::string &error)
{
    auto comma = v.find(',');
    std::string seedStr = v.substr(0, comma);
    char *end = nullptr;
    unsigned long long s = std::strtoull(seedStr.c_str(), &end, 10);
    if (seedStr.empty() || !end || *end || s == 0) {
        error = "bad --chaos value '" + v + "' (want SEED[,PERIOD], "
                "SEED >= 1)";
        return false;
    }
    seed = s;
    if (comma != std::string::npos) {
        std::string periodStr = v.substr(comma + 1);
        unsigned long long p =
            std::strtoull(periodStr.c_str(), &end, 10);
        if (periodStr.empty() || !end || *end || p == 0) {
            error = "bad --chaos value '" + v +
                    "' (want SEED[,PERIOD], PERIOD >= 1)";
            return false;
        }
        period = p;
    }
    return true;
}

} // namespace

std::optional<ServeCliOptions>
parseServeCli(const std::vector<std::string> &args, std::string &error)
{
    ServeCliOptions opts;
    opts.server = ServeOptions::fromEnv();
    if (auto v = envUnsigned("LVPLIB_SERVE_WORKERS", 1, 256))
        opts.workers = static_cast<unsigned>(*v);
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto value = [&]() -> const std::string * {
            if (i + 1 >= args.size()) {
                error = a + " needs a value";
                return nullptr;
            }
            return &args[++i];
        };
        auto unsignedValue =
            [&](unsigned long long min,
                unsigned long long max) -> std::optional<std::uint64_t> {
            const std::string *v = value();
            if (!v)
                return std::nullopt;
            char *end = nullptr;
            unsigned long long n = std::strtoull(v->c_str(), &end, 10);
            if (v->empty() || !end || *end || n < min || n > max) {
                error = "bad " + a + " value '" + *v + "'";
                return std::nullopt;
            }
            return n;
        };
        if (a == "--help" || a == "-h") {
            opts.help = true;
        } else if (a == "--socket") {
            auto *v = value();
            if (!v)
                return std::nullopt;
            opts.server.socketPath = *v;
        } else if (a == "--port") {
            auto n = unsignedValue(0, 65535);
            if (!n)
                return std::nullopt;
            opts.server.port = static_cast<std::uint16_t>(*n);
            opts.server.socketPath.clear();
        } else if (a == "--max-sessions") {
            auto n = unsignedValue(
                1, std::numeric_limits<std::uint64_t>::max());
            if (!n)
                return std::nullopt;
            opts.server.maxSessions = *n;
        } else if (a == "--lru-bytes") {
            auto n = unsignedValue(
                0, std::numeric_limits<std::uint64_t>::max());
            if (!n)
                return std::nullopt;
            opts.server.lruBytes = *n;
        } else if (a == "--queue-chunks") {
            auto n = unsignedValue(1, 1u << 20);
            if (!n)
                return std::nullopt;
            opts.server.queueChunks = *n;
        } else if (a == "--drain-ms") {
            auto n = unsignedValue(0, 600000);
            if (!n)
                return std::nullopt;
            opts.server.drainMs = *n;
        } else if (a == "--idle-ms") {
            auto n = unsignedValue(0, 86400000);
            if (!n)
                return std::nullopt;
            opts.server.idleMs = *n;
        } else if (a == "--resume-ttl-ms") {
            auto n = unsignedValue(0, 86400000);
            if (!n)
                return std::nullopt;
            opts.server.resumeTtlMs = *n;
        } else if (a == "--max-parked") {
            auto n = unsignedValue(
                0, std::numeric_limits<std::uint64_t>::max());
            if (!n)
                return std::nullopt;
            opts.server.maxParked = *n;
        } else if (a == "--workers") {
            auto n = unsignedValue(1, 256);
            if (!n)
                return std::nullopt;
            opts.workers = static_cast<unsigned>(*n);
        } else if (a == "--chaos") {
            auto *v = value();
            if (!v)
                return std::nullopt;
            if (!parseChaosValue(*v, opts.chaosSeed, opts.chaosPeriod,
                                 error))
                return std::nullopt;
        } else {
            error = "unknown option '" + a + "'";
            return std::nullopt;
        }
    }
    return opts;
}

std::string
serveUsage()
{
    std::ostringstream os;
    os << "usage: lvpserve [options]\n"
          "\n"
          "Serve trace streams from concurrent clients, one isolated\n"
          "predictor session per OPEN_SESSION (docs/SERVING.md).\n"
          "\n"
          "endpoint (unix socket wins when both are set):\n"
          "  --socket PATH       listen on a unix-domain socket\n"
          "  --port N            listen on 127.0.0.1:N (0 = ephemeral;\n"
          "                      the bound port is printed)\n"
          "\n"
          "options:\n"
          "  --max-sessions N    concurrent session cap (default 64)\n"
          "  --lru-bytes N       hot-trace LRU budget (default 256 MiB;\n"
          "                      0 disables caching)\n"
          "  --queue-chunks N    per-session queue bound (default 8)\n"
          "  --drain-ms N        SIGTERM/SIGINT drain window (default\n"
          "                      2000)\n"
          "  --idle-ms N         per-session read deadline: a peer\n"
          "                      making no frame progress for N ms is\n"
          "                      evicted and its session parked for\n"
          "                      resume (default 30000; 0 = never)\n"
          "  --resume-ttl-ms N   parked-session lifetime (default\n"
          "                      30000)\n"
          "  --max-parked N      parked-session cap (default 64;\n"
          "                      0 disables resume)\n"
          "  --workers N         fork N supervised worker processes\n"
          "                      sharing the endpoint; the parent\n"
          "                      restarts dead workers with backoff\n"
          "                      (default 1 = no fork)\n"
          "  --chaos SEED[,P]    arm serve-layer fault injection with\n"
          "                      the given seed and period (testing)\n"
          "  --help              this text\n"
          "\n"
          "environment (strict-parsed defaults; flags win):\n"
          "  LVPLIB_SERVE_SOCKET, LVPLIB_SERVE_PORT,\n"
          "  LVPLIB_SERVE_MAX_SESSIONS, LVPLIB_SERVE_LRU_BYTES,\n"
          "  LVPLIB_SERVE_QUEUE_CHUNKS, LVPLIB_SERVE_IDLE_MS,\n"
          "  LVPLIB_SERVE_RESUME_TTL_MS, LVPLIB_SERVE_MAX_PARKED,\n"
          "  LVPLIB_SERVE_WORKERS\n"
          "\n"
          "SIGTERM/SIGINT drain gracefully: no new connections, a\n"
          "--drain-ms window for in-flight sessions, then exit 0.\n"
          "With --workers, SIGTERM is forwarded to every worker and\n"
          "stragglers are SIGKILLed after the drain window; a worker\n"
          "felled by injected chaos exits 70 and is restarted.\n";
    return os.str();
}

std::optional<LoadCliOptions>
parseLoadCli(const std::vector<std::string> &args, std::string &error)
{
    LoadCliOptions opts;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto value = [&]() -> const std::string * {
            if (i + 1 >= args.size()) {
                error = a + " needs a value";
                return nullptr;
            }
            return &args[++i];
        };
        auto unsignedValue =
            [&](unsigned long min,
                unsigned long max) -> std::optional<unsigned> {
            const std::string *v = value();
            if (!v)
                return std::nullopt;
            char *end = nullptr;
            unsigned long n = std::strtoul(v->c_str(), &end, 10);
            if (v->empty() || !end || *end || n < min || n > max) {
                error = "bad " + a + " value '" + *v + "'";
                return std::nullopt;
            }
            return static_cast<unsigned>(n);
        };
        if (a == "--help" || a == "-h") {
            opts.help = true;
        } else if (a == "--no-verify") {
            opts.verify = false;
        } else if (a == "--socket") {
            auto *v = value();
            if (!v)
                return std::nullopt;
            opts.socketPath = *v;
        } else if (a == "--port") {
            auto n = unsignedValue(1, 65535);
            if (!n)
                return std::nullopt;
            opts.port = static_cast<std::uint16_t>(*n);
        } else if (a == "--users") {
            auto n = unsignedValue(1, 1024);
            if (!n)
                return std::nullopt;
            opts.users = *n;
        } else if (a == "--scale") {
            auto n = unsignedValue(1,
                                   std::numeric_limits<unsigned>::max());
            if (!n)
                return std::nullopt;
            opts.scale = *n;
        } else if (a == "--chunk-records") {
            auto n = unsignedValue(1, 1u << 24);
            if (!n)
                return std::nullopt;
            opts.chunkRecords = *n;
        } else if (a == "--predictors") {
            auto *v = value();
            if (!v)
                return std::nullopt;
            if (!validateNameList(
                    *v, "predictor",
                    [](const std::string &n) {
                        return core::findPredictor(n) != nullptr;
                    },
                    error))
                return std::nullopt;
            opts.predictors = *v;
        } else if (a == "--workloads") {
            auto *v = value();
            if (!v)
                return std::nullopt;
            if (!validateNameList(*v, "workload", knownWorkload, error))
                return std::nullopt;
            opts.workloads = *v;
        } else if (a == "--chaos") {
            auto *v = value();
            if (!v)
                return std::nullopt;
            std::uint64_t period = 0; // unused on the load side
            if (!parseChaosValue(*v, opts.chaosSeed, period, error))
                return std::nullopt;
        } else {
            error = "unknown option '" + a + "'";
            return std::nullopt;
        }
    }
    if (!opts.help && opts.socketPath.empty() && opts.port == 0) {
        error = "need an endpoint: --socket PATH or --port N";
        return std::nullopt;
    }
    return opts;
}

std::string
loadUsage()
{
    std::ostringstream os;
    os << "usage: lvpload (--socket PATH | --port N) [options]\n"
          "\n"
          "Drive an lvpserve instance with N concurrent simulated\n"
          "users streaming the benchmark suite, verifying every\n"
          "session's final statistics against the offline lvpbench\n"
          "pipeline (byte-identical or exit 2).\n"
          "\n"
          "options:\n"
          "  --users N           concurrent client threads (default 8)\n"
          "  --scale N           workload scale (default 1)\n"
          "  --chunk-records N   records per TRACE_CHUNK (default\n"
          "                      4096)\n"
          "  --predictors LIST   comma-separated registry names cycled\n"
          "                      across users (default: all)\n"
          "  --workloads LIST    comma-separated benchmark names\n"
          "                      (default: the full suite)\n"
          "  --no-verify         skip the offline-oracle comparison\n"
          "  --chaos SEED        fault-tolerance soak: seeded client\n"
          "                      crashes mid-stream with reconnect and\n"
          "                      session resume (fresh-session\n"
          "                      fallback on rejection), an fd-leak\n"
          "                      check, and a byte-reproducible\n"
          "                      per-seed report on stdout\n"
          "  --help              this text\n"
          "\n"
          "exit status: 0 all sessions verified; 1 usage or\n"
          "connection failure; 2 a session's statistics diverged from\n"
          "the offline pipeline.\n";
    return os.str();
}

} // namespace lvplib::serve

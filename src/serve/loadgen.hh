/**
 * @file
 * Load-generation building blocks for lvpload and the serve tests:
 * turning the benchmark suite into wire-ready ServeRecord streams,
 * sharing them across simulated users, and computing the offline
 * statistics every server session must match byte for byte.
 *
 * The per-session/shared split, client side: the expensive artifacts
 * (interpreting a workload, encoding its stream) are produced once per
 * process in a StreamLibrary and shared read-only by every user
 * thread; each user's connection, sessions, and verification state are
 * its own. The byte-identity oracle is RunCache::predictorOnly — the
 * exact memoized path lvpbench uses — so "the server agrees with
 * lvpload" means "the server agrees with the paper pipeline".
 */

#ifndef LVPLIB_SERVE_LOADGEN_HH
#define LVPLIB_SERVE_LOADGEN_HH

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/protocol.hh"
#include "sim/run_cache.hh"
#include "workloads/workload.hh"

namespace lvplib::serve
{

/** One workload's encoded, fingerprinted wire stream. */
struct LoadStream
{
    std::string workload;             ///< source benchmark name
    std::vector<std::uint8_t> bytes;  ///< encoded ServeRecords
    std::uint64_t records = 0;
    std::uint64_t fingerprint = 0;    ///< streamFingerprint(bytes)
};

/**
 * TraceSink encoding the predictor-relevant projection of a dynamic
 * trace (loads, stores, branches) into ServeRecord wire bytes —
 * the exact event sequence core::PredictorAnnotator would feed a
 * predictor, which is what makes server-side stats byte-identical to
 * the offline run.
 */
class ServeRecordEncoder : public trace::TraceSink
{
  public:
    void consume(const trace::TraceRecord &rec) override;

    std::uint64_t records() const { return records_; }
    const std::vector<std::uint8_t> &bytes() const { return bytes_; }
    std::vector<std::uint8_t> takeBytes() { return std::move(bytes_); }

  private:
    std::vector<std::uint8_t> bytes_;
    std::uint64_t records_ = 0;
};

/**
 * Process-wide once-per-workload stream builder. get() interprets and
 * encodes on first request (via RunCache::replayShared) and returns
 * the shared immutable stream to every later requester; concurrent
 * first requests block on one computation, mirroring RunCache's
 * memoization discipline.
 */
class StreamLibrary
{
  public:
    /** @param cache Supplies programs/traces; typically
     *  RunCache::instance(), or a local instance in tests. */
    explicit StreamLibrary(sim::RunCache &cache) : cache_(cache) {}

    std::shared_ptr<const LoadStream>
    get(const workloads::Workload &w, workloads::CodeGen cg,
        unsigned scale, const sim::RunConfig &rc);

  private:
    sim::RunCache &cache_;
    std::mutex m_;
    std::map<std::string,
             std::shared_future<std::shared_ptr<const LoadStream>>>
        streams_;
};

/**
 * The offline answer a served session must reproduce exactly:
 * RunCache::predictorOnly for the same (workload, codegen, scale,
 * run-config, predictor).
 */
core::LvpStats expectedStats(sim::RunCache &cache,
                             const workloads::Workload &w,
                             workloads::CodeGen cg, unsigned scale,
                             const sim::RunConfig &rc,
                             const core::PredictorInfo &info);

} // namespace lvplib::serve

#endif // LVPLIB_SERVE_LOADGEN_HH

/**
 * @file
 * Blocking framed I/O over a connected socket for the lvp-serve
 * protocol, shared by the server's connection handlers and the
 * client library.
 *
 * All reads and writes loop until the full frame has moved (short
 * reads/writes and EINTR are retried), so callers see whole frames or
 * a typed error, never a partial one. Failures are the recoverable
 * tier: a peer hangup, an oversized length prefix, or an injected
 * fault raises SimError — the server catches it per connection,
 * reports serve.frame_errors, and tears down only that session.
 *
 * Backpressure rides on the transport: the server reads a connection
 * frame by frame and enqueues each chunk into the session's bounded
 * queue before reading the next, so a slow predictor stalls the
 * socket (the kernel buffer fills, the client's send blocks) instead
 * of growing server memory.
 *
 * Deadlines: setReadDeadline() bounds how long the peer may take to
 * deliver one whole frame. The clock spans the entire frame — header
 * wait and payload trickle alike — so it covers both the idle peer
 * (no header bytes at all) and the slow-progress peer (header sent,
 * payload dribbling). Expiry raises SimError(Watchdog); the server
 * treats it as a slow-peer eviction.
 *
 * Chaos: when Point::ServeFrame is armed, frame number n of a
 * connection's stream (keyed by the connection id) fails with
 * SimError(Injected) — the soak test's socket-path fault.
 * Point::ServeTornWrite stops a frame write mid-payload (the peer
 * sees a short frame) and Point::ServeConnReset shuts the socket
 * down mid-exchange; both then throw SimError(Injected) locally.
 */

#ifndef LVPLIB_SERVE_FRAMING_HH
#define LVPLIB_SERVE_FRAMING_HH

#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "serve/protocol.hh"

namespace lvplib::serve
{

/** One received frame. */
struct Frame
{
    FrameType type = FrameType::Error;
    std::vector<std::uint8_t> payload;
};

/**
 * Framed reader/writer over one connected socket fd. Not thread-safe;
 * each connection is owned by one handler thread (the server) or one
 * caller (the client).
 */
class FrameIo
{
  public:
    /**
     * @param fd A connected stream socket; FrameIo takes ownership
     * and closes it on destruction.
     * @param maxPayloadBytes Reject larger length prefixes with a
     * typed error instead of allocating (a hostile or corrupt prefix
     * must not OOM the server). Clamped to HardMaxFramePayloadBytes.
     * @param chaosKey Stream key for the serve injection points.
     */
    FrameIo(int fd, std::uint64_t maxPayloadBytes,
            std::uint64_t chaosKey);
    ~FrameIo();

    FrameIo(const FrameIo &) = delete;
    FrameIo &operator=(const FrameIo &) = delete;

    /** Movable so ServeClient can be stored/replaced (the chaos load
     *  driver reconnects by rebuilding its client in place). */
    FrameIo(FrameIo &&other) noexcept
        : fd_(other.fd_), maxPayloadBytes_(other.maxPayloadBytes_),
          chaosKey_(other.chaosKey_), frames_(other.frames_),
          readDeadlineMs_(other.readDeadlineMs_)
    {
        other.fd_ = -1;
    }
    FrameIo &operator=(FrameIo &&) = delete;

    /**
     * Read one whole frame.
     * @throws SimError(TraceIo) on EOF mid-frame, a socket error, or
     * an oversized payload; SimError(Injected) under chaos.
     */
    Frame read();

    /**
     * Read one whole frame, or report a clean end-of-stream.
     * @return false when the peer closed the connection cleanly
     * (EOF before any header byte); errors still throw.
     */
    bool readOrEof(Frame &out);

    /** Write one whole frame. @throws SimError(TraceIo) on error. */
    void write(FrameType type, std::span<const std::uint8_t> payload);

    /** Shut the socket down (wakes a blocked peer); fd stays owned. */
    void shutdown();

    /**
     * Bound every subsequent whole-frame read to @p ms milliseconds
     * (0 disables, the default). Expiry raises SimError(Watchdog).
     */
    void setReadDeadline(std::uint64_t ms) { readDeadlineMs_ = ms; }

    int fd() const { return fd_; }

  private:
    /** @return bytes read: @p n, or 0 on immediate EOF (only when
     *  @p eofOk), never partial. @p deadline is the absolute expiry
     *  (steady_clock::time_point::max() = none). */
    std::size_t readFull(void *buf, std::size_t n, bool eofOk,
                         std::chrono::steady_clock::time_point deadline);
    void writeFull(const void *buf, std::size_t n);
    void maybeInject(bool writing);

    int fd_;
    std::uint64_t maxPayloadBytes_;
    std::uint64_t chaosKey_;
    std::uint64_t frames_ = 0; ///< serve-point decision-stream counter
    std::uint64_t readDeadlineMs_ = 0;
};

} // namespace lvplib::serve

#endif // LVPLIB_SERVE_FRAMING_HH

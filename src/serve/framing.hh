/**
 * @file
 * Blocking framed I/O over a connected socket for the lvp-serve
 * protocol, shared by the server's connection handlers and the
 * client library.
 *
 * All reads and writes loop until the full frame has moved (short
 * reads/writes and EINTR are retried), so callers see whole frames or
 * a typed error, never a partial one. Failures are the recoverable
 * tier: a peer hangup, an oversized length prefix, or an injected
 * fault raises SimError — the server catches it per connection,
 * reports serve.frame_errors, and tears down only that session.
 *
 * Backpressure rides on the transport: the server reads a connection
 * frame by frame and enqueues each chunk into the session's bounded
 * queue before reading the next, so a slow predictor stalls the
 * socket (the kernel buffer fills, the client's send blocks) instead
 * of growing server memory.
 *
 * Chaos: when Point::ServeFrame is armed, frame number n of a
 * connection's stream (keyed by the connection id) fails with
 * SimError(Injected) — the soak test's socket-path fault.
 */

#ifndef LVPLIB_SERVE_FRAMING_HH
#define LVPLIB_SERVE_FRAMING_HH

#include <cstdint>
#include <span>
#include <vector>

#include "serve/protocol.hh"

namespace lvplib::serve
{

/** One received frame. */
struct Frame
{
    FrameType type = FrameType::Error;
    std::vector<std::uint8_t> payload;
};

/**
 * Framed reader/writer over one connected socket fd. Not thread-safe;
 * each connection is owned by one handler thread (the server) or one
 * caller (the client).
 */
class FrameIo
{
  public:
    /**
     * @param fd A connected stream socket; FrameIo takes ownership
     * and closes it on destruction.
     * @param maxPayloadBytes Reject larger length prefixes with a
     * typed error instead of allocating (a hostile or corrupt prefix
     * must not OOM the server).
     * @param chaosKey Stream key for the ServeFrame injection point.
     */
    FrameIo(int fd, std::uint64_t maxPayloadBytes,
            std::uint64_t chaosKey);
    ~FrameIo();

    FrameIo(const FrameIo &) = delete;
    FrameIo &operator=(const FrameIo &) = delete;

    /**
     * Read one whole frame.
     * @throws SimError(TraceIo) on EOF mid-frame, a socket error, or
     * an oversized payload; SimError(Injected) under chaos.
     */
    Frame read();

    /**
     * Read one whole frame, or report a clean end-of-stream.
     * @return false when the peer closed the connection cleanly
     * (EOF before any header byte); errors still throw.
     */
    bool readOrEof(Frame &out);

    /** Write one whole frame. @throws SimError(TraceIo) on error. */
    void write(FrameType type, std::span<const std::uint8_t> payload);

    /** Shut the socket down (wakes a blocked peer); fd stays owned. */
    void shutdown();

    int fd() const { return fd_; }

  private:
    /** @return bytes read: @p n, or 0 on immediate EOF (only when
     *  @p eofOk), never partial. */
    std::size_t readFull(void *buf, std::size_t n, bool eofOk);
    void writeFull(const void *buf, std::size_t n);
    void maybeInject();

    int fd_;
    std::uint64_t maxPayloadBytes_;
    std::uint64_t chaosKey_;
    std::uint64_t frames_ = 0; ///< ServeFrame decision-stream counter
};

} // namespace lvplib::serve

#endif // LVPLIB_SERVE_FRAMING_HH

/**
 * @file
 * The lvp-serve wire protocol: a length-prefixed framed exchange over
 * a byte stream (unix or TCP socket) that lets many concurrent
 * clients run the paper's load-value-prediction machinery online —
 * the ROADMAP's "millions of users" framing made literal.
 *
 * Every frame is
 *
 *   u32 payload length (little-endian, excludes this 5-byte header)
 *   u8  frame type (FrameType)
 *   payload bytes
 *
 * A conversation:
 *
 *   client                          server
 *   Hello {version}             ->
 *                               <-  HelloOk {version}
 *   OpenSession {pred, fp, n}   ->
 *                               <-  OpenOk {sessionId, cached}
 *   TraceChunk {records} ...    ->      (or RunCached {} when cached)
 *   Metrics {}                  ->
 *                               <-  MetricsReply {snapshot}
 *   CloseSession {}             ->
 *                               <-  MetricsReply {final snapshot}
 *   (another OpenSession, or)
 *   Goodbye {}                  ->
 *
 * Trace payloads carry ServeRecords: the predictor-relevant
 * projection of a dynamic trace (loads, stores, branches — the exact
 * event sequence core::PredictorAnnotator feeds a ValuePredictor, so
 * a session's final LvpStats are byte-identical to the offline
 * lvpbench path over the same program). Streams are identified by the
 * FNV-1a fingerprint of their encoded record bytes; the server keeps
 * an LRU of hot decoded streams keyed on it, letting later sessions
 * replay a popular workload without re-sending a byte (OpenOk.cached,
 * RunCached).
 *
 * Encoding and decoding are strict: an unknown frame type, an
 * out-of-range record byte, or a payload whose size is not a whole
 * number of records raises SimError(TraceCorrupt) naming the reason —
 * a malformed client can never silently skew another session's
 * statistics.
 */

#ifndef LVPLIB_SERVE_PROTOCOL_HH
#define LVPLIB_SERVE_PROTOCOL_HH

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/lvp_unit.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace lvplib::serve
{

/** Protocol revision; Hello/HelloOk negotiate exact equality.
 *  v2 added Heartbeat/ResumeSession/ResumeOk and the OpenOk resume
 *  token. */
constexpr std::uint16_t ProtocolVersion = 2;

/** Frame header: u32 payload length + u8 type. */
constexpr std::size_t FrameHeaderBytes = 4 + 1;

/**
 * Absolute frame-payload ceiling, enforced in FrameIo regardless of
 * the configured --max-frame limit: a malformed or hostile length
 * prefix (the u32 admits values up to 4 GiB) must be rejected with a
 * typed SimError before any allocation is sized from it.
 */
constexpr std::uint64_t HardMaxFramePayloadBytes = 64ull << 20;

/** Every frame on the wire. */
enum class FrameType : std::uint8_t
{
    Hello = 1,        ///< c->s: {u16 version}
    HelloOk = 2,      ///< s->c: {u16 version}
    OpenSession = 3,  ///< c->s: {u64 fp, u64 records, u8 len, name}
    OpenOk = 4,       ///< s->c: {u64 sessionId, u8 cached, u64 token}
    TraceChunk = 5,   ///< c->s: N * ServeRecordBytes
    RunCached = 6,    ///< c->s: {} replay the server's cached stream
    Metrics = 7,      ///< c->s: {} request a mid-stream snapshot
    MetricsReply = 8, ///< s->c: encoded SessionMetrics
    CloseSession = 9, ///< s->c after drain: MetricsReply(final)
    Goodbye = 10,     ///< c->s: done with this connection
    Error = 11,       ///< s->c: {u8 ErrorKind, message bytes}
    Heartbeat = 12,   ///< c->s: {} keepalive; resets the idle deadline
    ResumeSession = 13, ///< c->s: {u64 sessionId, u64 token}
    ResumeOk = 14,    ///< s->c: {u64 sessionId, u64 records, u64 chunks}
};

const char *frameTypeName(FrameType t);

/** What kind of dynamic event a ServeRecord carries. */
enum class ServeKind : std::uint8_t
{
    Load = 1,
    Store = 2,
    Branch = 3,
};

/**
 * One predictor-relevant dynamic event. The projection of a
 * trace::TraceRecord that ValuePredictor::onLoad/onStore/onBranch
 * consume: kind, access size, branch outcome, pc, effective address,
 * and loaded value.
 */
struct ServeRecord
{
    std::uint8_t kind = 0;  ///< ServeKind
    std::uint8_t size = 0;  ///< access bytes (loads/stores), else 0
    std::uint8_t taken = 0; ///< branch outcome (branches), else 0
    Addr pc = 0;
    Addr addr = 0;  ///< effective address (memory ops), else 0
    Word value = 0; ///< loaded value (loads), else 0
};

/** Encoded record size: u8 kind|size|taken + u64 pc|addr|value. */
constexpr std::size_t ServeRecordBytes = 3 + 8 + 8 + 8;

/** Append @p rec to @p out in wire encoding. */
void encodeRecord(const ServeRecord &rec, std::vector<std::uint8_t> &out);

/**
 * Decode exactly @p bytes.size() / ServeRecordBytes records.
 * @throws SimError(TraceCorrupt) on a partial record, an unknown
 * kind byte, or an access size that is not 1/4/8 (0 for branches).
 */
std::vector<ServeRecord> decodeRecords(std::span<const std::uint8_t> bytes);

/** FNV-1a offset basis (the @p seed for a fresh fingerprint). */
constexpr std::uint64_t FingerprintSeed = 0xcbf29ce484222325ull;

/** FNV-1a over encoded record bytes: the stream fingerprint the
 *  hot-trace LRU is keyed on. Chain calls via @p seed. */
std::uint64_t streamFingerprint(std::span<const std::uint8_t> bytes,
                                std::uint64_t seed = FingerprintSeed);

/** A shared immutable decoded trace stream (what sessions replay). */
using TraceBlob = std::shared_ptr<const std::vector<ServeRecord>>;

/**
 * A column-compressed ServeRecord stream: what the hot-trace LRU
 * stores, so the same byte budget holds several times more workloads.
 * Produced by compressServeStream(); expanded back to a TraceBlob by
 * decompressServeStream() when a RunCached session replays it.
 */
struct CompressedTrace
{
    std::vector<std::uint8_t> bytes;
    std::uint64_t records = 0;
};

/** A shared immutable compressed stream (LRU entry). */
using CompressedBlob = std::shared_ptr<const CompressedTrace>;

/**
 * Compress @p records with the trace-layer column codecs
 * (trace/columnar.hh): one meta byte per record (kind, access-size
 * code, taken), pc as a dense delta column, addr/value as sparse
 * columns, plus a checksum. Typically shrinks the in-memory stream by
 * an order of magnitude — the paper's value locality applied to the
 * server's RAM.
 */
CompressedTrace
compressServeStream(std::span<const ServeRecord> records);

/**
 * Expand a compressed stream back into a replayable blob. Strict:
 * any malformed byte (bad meta, column over/under-run, checksum
 * mismatch) throws SimError(TraceCorrupt) — a corrupt cache entry can
 * never silently skew a session's statistics.
 */
TraceBlob decompressServeStream(const CompressedTrace &ct);

/** OpenSession payload. */
struct OpenRequest
{
    std::string predictor;       ///< registry name, e.g. "vtage"
    std::uint64_t fingerprint = 0; ///< stream fingerprint (0 = none)
    std::uint64_t records = 0;     ///< expected records (0 = unknown)
};

/** A session statistics snapshot (MetricsReply payload). */
struct SessionMetrics
{
    std::uint64_t sessionId = 0;
    std::uint64_t recordsProcessed = 0;
    std::uint64_t chunksProcessed = 0;
    bool final_ = false; ///< true in the post-drain CloseSession reply
    core::LvpStats stats;

    bool operator==(const SessionMetrics &o) const = default;
};

/** @{ Payload codecs. Decoders throw SimError(TraceCorrupt) on a
 *  malformed payload, naming the frame and the reason. */
std::vector<std::uint8_t> encodeHello(std::uint16_t version);
std::uint16_t decodeHello(std::span<const std::uint8_t> payload,
                          const char *what);

std::vector<std::uint8_t> encodeOpen(const OpenRequest &req);
OpenRequest decodeOpen(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encodeOpenOk(std::uint64_t sessionId,
                                       bool cached,
                                       std::uint64_t resumeToken);
void decodeOpenOk(std::span<const std::uint8_t> payload,
                  std::uint64_t &sessionId, bool &cached,
                  std::uint64_t &resumeToken);

/** ResumeSession payload: which parked session to revive. */
struct ResumeRequest
{
    std::uint64_t sessionId = 0;
    std::uint64_t token = 0; ///< the OpenOk resume token
};

std::vector<std::uint8_t> encodeResume(const ResumeRequest &req);
ResumeRequest decodeResume(std::span<const std::uint8_t> payload);

/** ResumeOk payload: where the revived session left off. The client
 *  continues streaming from record @p recordsProcessed. */
struct ResumeReply
{
    std::uint64_t sessionId = 0;
    std::uint64_t recordsProcessed = 0;
    std::uint64_t chunksProcessed = 0;
};

std::vector<std::uint8_t> encodeResumeOk(const ResumeReply &rep);
ResumeReply decodeResumeOk(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encodeMetrics(const SessionMetrics &m);
SessionMetrics decodeMetrics(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encodeError(ErrorKind kind,
                                      std::string_view message);
/** @return the decoded kind; @p message receives the text. */
ErrorKind decodeError(std::span<const std::uint8_t> payload,
                      std::string &message);
/** @} */

} // namespace lvplib::serve

#endif // LVPLIB_SERVE_PROTOCOL_HH

#include "serve/supervisor.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace lvplib::serve
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Lazy serve.supervisor.* counters: first event registers, so a run
 *  with no worker deaths leaves the metrics JSON untouched. */
void
bumpSupervisor(const char *what)
{
    obs::metrics()
        .counter(std::string("serve.supervisor.") + what)
        .add();
}

} // namespace

Supervisor::Supervisor(SupervisorOptions opts, WorkerMain workerMain)
    : opts_(std::move(opts)), workerMain_(std::move(workerMain))
{
    lvp_assert(opts_.workers >= 1, "supervisor needs >= 1 worker");
    if (opts_.backoffInitialMs == 0)
        opts_.backoffInitialMs = 1;
    if (opts_.backoffMaxMs < opts_.backoffInitialMs)
        opts_.backoffMaxMs = opts_.backoffInitialMs;
    slots_.resize(opts_.workers);
}

void
Supervisor::spawn(unsigned idx)
{
    pid_t pid = ::fork();
    if (pid < 0) {
        // Treat a failed fork like an instant worker death: the slot
        // retries on the backoff schedule instead of being lost.
        std::fprintf(stderr, "%s: fork failed for worker %u: %s\n",
                     opts_.tag.c_str(), idx, std::strerror(errno));
        std::lock_guard<std::mutex> lock(m_);
        Slot &s = slots_[idx];
        s.pid = -1;
        s.consecutiveFailures++;
        auto delay = std::min<std::uint64_t>(
            opts_.backoffMaxMs,
            opts_.backoffInitialMs
                << std::min(s.consecutiveFailures - 1, 20u));
        s.restartAt = Clock::now() + std::chrono::milliseconds(delay);
        return;
    }
    if (pid == 0) {
        // Child: run the worker body and leave without touching the
        // parent's stack, atexit handlers, or static destructors.
        int rc = 1;
        try {
            rc = workerMain_(idx);
        } catch (...) {
            rc = 1;
        }
        std::_Exit(rc);
    }
    {
        std::lock_guard<std::mutex> lock(m_);
        Slot &s = slots_[idx];
        s.pid = pid;
        s.startedAt = Clock::now();
    }
    // Scripts (the CI crash-smoke) parse these lines to find a victim
    // pid, so keep the format stable.
    std::printf("%s: worker %u pid %d started\n", opts_.tag.c_str(),
                idx, static_cast<int>(pid));
    std::fflush(stdout);
}

bool
Supervisor::reap(bool stopping)
{
    bool any = false;
    for (;;) {
        int status = 0;
        pid_t pid = ::waitpid(-1, &status, WNOHANG);
        if (pid <= 0)
            break;
        any = true;
        std::lock_guard<std::mutex> lock(m_);
        for (unsigned idx = 0; idx < slots_.size(); ++idx) {
            Slot &s = slots_[idx];
            if (s.pid != pid)
                continue;
            s.pid = -1;
            deaths_.fetch_add(1, std::memory_order_relaxed);
            bumpSupervisor("worker_deaths");
            if (stopping)
                break; // drainTree() owns the rest
            // A worker that served for a while earned a fresh backoff;
            // a crash loop doubles its delay up to the ceiling.
            auto uptime =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    Clock::now() - s.startedAt)
                    .count();
            if (uptime >= 1000)
                s.consecutiveFailures = 0;
            s.consecutiveFailures++;
            auto delay = std::min<std::uint64_t>(
                opts_.backoffMaxMs,
                opts_.backoffInitialMs
                    << std::min(s.consecutiveFailures - 1, 20u));
            s.restartAt =
                Clock::now() + std::chrono::milliseconds(delay);
            if (WIFSIGNALED(status))
                std::printf("%s: worker %u pid %d killed by signal %d, "
                            "restarting in %llu ms\n",
                            opts_.tag.c_str(), idx,
                            static_cast<int>(pid), WTERMSIG(status),
                            static_cast<unsigned long long>(delay));
            else
                std::printf("%s: worker %u pid %d exited with status "
                            "%d, restarting in %llu ms\n",
                            opts_.tag.c_str(), idx,
                            static_cast<int>(pid), WEXITSTATUS(status),
                            static_cast<unsigned long long>(delay));
            std::fflush(stdout);
            break;
        }
    }
    return any;
}

int
Supervisor::run(int wakeFd)
{
    for (unsigned idx = 0; idx < opts_.workers; ++idx)
        spawn(idx);

    for (;;) {
        pollfd pfd{wakeFd, POLLIN, 0};
        int r = ::poll(&pfd, 1, /*timeout-ms=*/50);
        if (r < 0 && errno != EINTR)
            break; // wake pipe gone; treat as shutdown
        if (r > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)))
            break; // shutdown requested
        reap(/*stopping=*/false);
        // Restart every slot whose backoff has elapsed.
        std::vector<unsigned> due;
        {
            std::lock_guard<std::mutex> lock(m_);
            auto now = Clock::now();
            for (unsigned idx = 0; idx < slots_.size(); ++idx)
                if (slots_[idx].pid < 0 && slots_[idx].restartAt <= now)
                    due.push_back(idx);
        }
        for (unsigned idx : due) {
            restarts_.fetch_add(1, std::memory_order_relaxed);
            bumpSupervisor("restarts");
            spawn(idx);
        }
    }

    drainTree();
    return 0;
}

void
Supervisor::drainTree()
{
    // Forward SIGTERM: each worker runs its own graceful drain.
    {
        std::lock_guard<std::mutex> lock(m_);
        for (Slot &s : slots_)
            if (s.pid > 0)
                ::kill(s.pid, SIGTERM);
    }
    auto deadline =
        Clock::now() + std::chrono::milliseconds(opts_.drainMs);
    for (;;) {
        reap(/*stopping=*/true);
        bool anyLive = false;
        {
            std::lock_guard<std::mutex> lock(m_);
            for (const Slot &s : slots_)
                if (s.pid > 0)
                    anyLive = true;
        }
        if (!anyLive)
            break;
        if (Clock::now() >= deadline) {
            std::lock_guard<std::mutex> lock(m_);
            for (Slot &s : slots_)
                if (s.pid > 0) {
                    std::fprintf(stderr,
                                 "%s: worker pid %d ignored SIGTERM "
                                 "for %llu ms, killing\n",
                                 opts_.tag.c_str(),
                                 static_cast<int>(s.pid),
                                 static_cast<unsigned long long>(
                                     opts_.drainMs));
                    ::kill(s.pid, SIGKILL);
                }
            break;
        }
        ::usleep(10 * 1000);
    }
    // Final blocking reap: every child accounted for, zero zombies
    // left behind (waitpid returns ECHILD when the set is empty).
    for (;;) {
        int status = 0;
        pid_t pid = ::waitpid(-1, &status, 0);
        if (pid < 0) {
            if (errno == EINTR)
                continue;
            break; // ECHILD: nothing left
        }
        std::lock_guard<std::mutex> lock(m_);
        for (Slot &s : slots_)
            if (s.pid == pid)
                s.pid = -1;
    }
}

std::vector<pid_t>
Supervisor::livePids() const
{
    std::lock_guard<std::mutex> lock(m_);
    std::vector<pid_t> pids;
    for (const Slot &s : slots_)
        if (s.pid > 0)
            pids.push_back(s.pid);
    return pids;
}

} // namespace lvplib::serve

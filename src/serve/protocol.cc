#include "serve/protocol.hh"

#include <cstddef>
#include <cstring>

#include "trace/columnar.hh"

namespace lvplib::serve
{

namespace
{

constexpr std::uint64_t FnvPrime = 0x00000100000001b3ull;

void
put8(std::vector<std::uint8_t> &out, std::uint8_t v)
{
    out.push_back(v);
}

void
put16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
put32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
put64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

[[noreturn]] void
malformed(const char *what, const std::string &why)
{
    throw SimError(ErrorKind::TraceCorrupt,
                   std::string("serve: malformed ") + what + ": " + why);
}

std::uint16_t
get16(std::span<const std::uint8_t> p, std::size_t off)
{
    return static_cast<std::uint16_t>(p[off]) |
           static_cast<std::uint16_t>(p[off + 1]) << 8;
}

std::uint32_t
get32(std::span<const std::uint8_t> p, std::size_t off)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[off + i]) << (8 * i);
    return v;
}

std::uint64_t
get64(std::span<const std::uint8_t> p, std::size_t off)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[off + i]) << (8 * i);
    return v;
}

} // namespace

const char *
frameTypeName(FrameType t)
{
    switch (t) {
      case FrameType::Hello: return "Hello";
      case FrameType::HelloOk: return "HelloOk";
      case FrameType::OpenSession: return "OpenSession";
      case FrameType::OpenOk: return "OpenOk";
      case FrameType::TraceChunk: return "TraceChunk";
      case FrameType::RunCached: return "RunCached";
      case FrameType::Metrics: return "Metrics";
      case FrameType::MetricsReply: return "MetricsReply";
      case FrameType::CloseSession: return "CloseSession";
      case FrameType::Goodbye: return "Goodbye";
      case FrameType::Error: return "Error";
      case FrameType::Heartbeat: return "Heartbeat";
      case FrameType::ResumeSession: return "ResumeSession";
      case FrameType::ResumeOk: return "ResumeOk";
    }
    return "?";
}

void
encodeRecord(const ServeRecord &rec, std::vector<std::uint8_t> &out)
{
    put8(out, rec.kind);
    put8(out, rec.size);
    put8(out, rec.taken);
    put64(out, rec.pc);
    put64(out, rec.addr);
    put64(out, rec.value);
}

std::vector<ServeRecord>
decodeRecords(std::span<const std::uint8_t> bytes)
{
    if (bytes.size() % ServeRecordBytes != 0)
        malformed("TraceChunk",
                  std::to_string(bytes.size() % ServeRecordBytes) +
                      " trailing byte(s) after the last whole record");
    std::vector<ServeRecord> out(bytes.size() / ServeRecordBytes);
    for (std::size_t i = 0; i < out.size(); ++i) {
        auto p = bytes.subspan(i * ServeRecordBytes, ServeRecordBytes);
        ServeRecord &r = out[i];
        r.kind = p[0];
        r.size = p[1];
        r.taken = p[2];
        r.pc = get64(p, 3);
        r.addr = get64(p, 11);
        r.value = get64(p, 19);
        if (r.kind < 1 || r.kind > 3)
            malformed("TraceChunk", "record " + std::to_string(i) +
                                        " has kind byte " +
                                        std::to_string(r.kind));
        bool memRef = r.kind != static_cast<std::uint8_t>(
                                    ServeKind::Branch);
        bool sizeOk = memRef ? (r.size == 1 || r.size == 4 || r.size == 8)
                             : r.size == 0;
        if (!sizeOk)
            malformed("TraceChunk", "record " + std::to_string(i) +
                                        " has access size " +
                                        std::to_string(r.size));
        if (r.taken > 1)
            malformed("TraceChunk", "record " + std::to_string(i) +
                                        " has taken byte " +
                                        std::to_string(r.taken));
    }
    return out;
}

std::uint64_t
streamFingerprint(std::span<const std::uint8_t> bytes,
                  std::uint64_t seed)
{
    std::uint64_t h = seed;
    for (std::uint8_t b : bytes) {
        h ^= b;
        h *= FnvPrime;
    }
    return h;
}

// The replay path scatters decoded columns straight into the
// ServeRecord array; its u64 fields must sit on 8-byte slots.
static_assert(sizeof(ServeRecord) % sizeof(std::uint64_t) == 0);
static_assert(offsetof(ServeRecord, pc) % sizeof(std::uint64_t) == 0);
static_assert(offsetof(ServeRecord, addr) % sizeof(std::uint64_t) == 0);
static_assert(offsetof(ServeRecord, value) % sizeof(std::uint64_t) == 0);

namespace
{

/** Meta-byte access-size codes: {0, 1, 4, 8} <-> {0, 1, 2, 3}. */
constexpr std::uint8_t MetaSizes[4] = {0, 1, 4, 8};

std::uint8_t
metaSizeCode(std::uint8_t size)
{
    return size == 8 ? 3 : size == 4 ? 2 : (size & 1);
}

} // namespace

CompressedTrace
compressServeStream(std::span<const ServeRecord> records)
{
    const std::size_t n = records.size();
    CompressedTrace ct;
    ct.records = n;
    auto &out = ct.bytes;
    out.reserve(n * 4 + 32);

    // One meta byte per record: kind (2 bits) | size code (2 bits) |
    // taken (1 bit). Column lengths are u32-prefixed; an FNV-1a of
    // everything preceding it closes the blob.
    for (const ServeRecord &r : records)
        out.push_back(static_cast<std::uint8_t>(
            (r.kind & 3) | (metaSizeCode(r.size) << 2) |
            ((r.taken & 1) << 4)));

    std::vector<std::uint64_t> col(n);
    std::vector<std::uint8_t> enc;

    for (std::size_t i = 0; i < n; ++i)
        col[i] = records[i].pc;
    trace::encodeDeltaColumn(col.data(), n, enc);
    put32(out, static_cast<std::uint32_t>(enc.size()));
    out.insert(out.end(), enc.begin(), enc.end());

    enc.clear();
    for (std::size_t i = 0; i < n; ++i)
        col[i] = records[i].addr;
    trace::encodeSparseColumn(col.data(), n, enc);
    put32(out, static_cast<std::uint32_t>(enc.size()));
    out.insert(out.end(), enc.begin(), enc.end());

    enc.clear();
    for (std::size_t i = 0; i < n; ++i)
        col[i] = records[i].value;
    trace::encodeSparseColumn(col.data(), n, enc);
    put32(out, static_cast<std::uint32_t>(enc.size()));
    out.insert(out.end(), enc.begin(), enc.end());

    put64(out, trace::fnv1a(out.data(), out.size()));
    return ct;
}

TraceBlob
decompressServeStream(const CompressedTrace &ct)
{
    const std::size_t n = static_cast<std::size_t>(ct.records);
    std::span<const std::uint8_t> b(ct.bytes);
    if (b.size() < 8)
        malformed("cached stream",
                  "only " + std::to_string(b.size()) + " byte(s)");
    const std::size_t payload = b.size() - 8;
    if (trace::fnv1a(b.data(), payload) != get64(b, payload))
        malformed("cached stream", "checksum mismatch");
    if (n > payload)
        malformed("cached stream",
                  std::to_string(n) + " records will not fit in " +
                      std::to_string(payload) + " payload byte(s)");

    auto blob = std::make_shared<std::vector<ServeRecord>>(n);
    constexpr std::size_t Stride =
        sizeof(ServeRecord) / sizeof(std::uint64_t);
    auto *base = reinterpret_cast<std::uint64_t *>(blob->data());
    auto slot = [base](std::size_t off) {
        return base + off / sizeof(std::uint64_t);
    };

    const std::uint8_t *meta = b.data();
    std::size_t off = n; // meta column occupies [0, n)
    auto column = [&](const char *name) {
        if (payload - off < 4)
            malformed("cached stream",
                      std::string(name) + " column length truncated");
        std::uint32_t len = get32(b, off);
        off += 4;
        if (len > payload - off)
            malformed("cached stream",
                      std::string(name) + " column overruns the payload");
        auto s = b.subspan(off, len);
        off += len;
        return s;
    };

    auto pcCol = column("pc");
    if (n > 0 &&
        !trace::decodeDeltaColumn(pcCol.data(), pcCol.size(),
                                  slot(offsetof(ServeRecord, pc)), n,
                                  Stride))
        malformed("cached stream", "pc column does not decode");
    auto addrCol = column("addr");
    if (n > 0 &&
        !trace::decodeSparseColumn(addrCol.data(), addrCol.size(),
                                   slot(offsetof(ServeRecord, addr)), n,
                                   Stride))
        malformed("cached stream", "addr column does not decode");
    auto valueCol = column("value");
    if (n > 0 &&
        !trace::decodeSparseColumn(valueCol.data(), valueCol.size(),
                                   slot(offsetof(ServeRecord, value)), n,
                                   Stride))
        malformed("cached stream", "value column does not decode");
    if (off != payload)
        malformed("cached stream",
                  std::to_string(payload - off) +
                      " trailing byte(s) after the value column");

    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t m = meta[i];
        ServeRecord &r = (*blob)[i];
        r.kind = m & 3;
        r.size = MetaSizes[(m >> 2) & 3];
        r.taken = (m >> 4) & 1;
        if (m >> 5)
            malformed("cached stream",
                      "record " + std::to_string(i) +
                          " has reserved meta bits set");
        if (r.kind < 1 || r.kind > 3)
            malformed("cached stream", "record " + std::to_string(i) +
                                           " has kind code " +
                                           std::to_string(m & 3));
        bool memRef =
            r.kind != static_cast<std::uint8_t>(ServeKind::Branch);
        if (memRef ? r.size == 0 : r.size != 0)
            malformed("cached stream", "record " + std::to_string(i) +
                                           " has access size " +
                                           std::to_string(r.size));
    }
    return blob;
}

std::vector<std::uint8_t>
encodeHello(std::uint16_t version)
{
    std::vector<std::uint8_t> out;
    put16(out, version);
    return out;
}

std::uint16_t
decodeHello(std::span<const std::uint8_t> payload, const char *what)
{
    if (payload.size() != 2)
        malformed(what, "expected 2 payload bytes, got " +
                            std::to_string(payload.size()));
    return get16(payload, 0);
}

std::vector<std::uint8_t>
encodeOpen(const OpenRequest &req)
{
    lvp_assert(req.predictor.size() <= 255,
               "predictor name too long for the wire");
    std::vector<std::uint8_t> out;
    put64(out, req.fingerprint);
    put64(out, req.records);
    put8(out, static_cast<std::uint8_t>(req.predictor.size()));
    out.insert(out.end(), req.predictor.begin(), req.predictor.end());
    return out;
}

OpenRequest
decodeOpen(std::span<const std::uint8_t> payload)
{
    if (payload.size() < 17)
        malformed("OpenSession", "payload shorter than its fixed head");
    OpenRequest req;
    req.fingerprint = get64(payload, 0);
    req.records = get64(payload, 8);
    std::size_t len = payload[16];
    if (payload.size() != 17 + len)
        malformed("OpenSession",
                  "name length byte says " + std::to_string(len) +
                      " but " + std::to_string(payload.size() - 17) +
                      " byte(s) follow");
    if (len == 0)
        malformed("OpenSession", "empty predictor name");
    req.predictor.assign(payload.begin() + 17, payload.end());
    return req;
}

std::vector<std::uint8_t>
encodeOpenOk(std::uint64_t sessionId, bool cached,
             std::uint64_t resumeToken)
{
    std::vector<std::uint8_t> out;
    put64(out, sessionId);
    put8(out, cached ? 1 : 0);
    put64(out, resumeToken);
    return out;
}

void
decodeOpenOk(std::span<const std::uint8_t> payload,
             std::uint64_t &sessionId, bool &cached,
             std::uint64_t &resumeToken)
{
    if (payload.size() != 17)
        malformed("OpenOk", "expected 17 payload bytes, got " +
                                std::to_string(payload.size()));
    sessionId = get64(payload, 0);
    if (payload[8] > 1)
        malformed("OpenOk", "cached byte out of range");
    cached = payload[8] == 1;
    resumeToken = get64(payload, 9);
}

std::vector<std::uint8_t>
encodeResume(const ResumeRequest &req)
{
    std::vector<std::uint8_t> out;
    put64(out, req.sessionId);
    put64(out, req.token);
    return out;
}

ResumeRequest
decodeResume(std::span<const std::uint8_t> payload)
{
    if (payload.size() != 16)
        malformed("ResumeSession", "expected 16 payload bytes, got " +
                                       std::to_string(payload.size()));
    ResumeRequest req;
    req.sessionId = get64(payload, 0);
    req.token = get64(payload, 8);
    return req;
}

std::vector<std::uint8_t>
encodeResumeOk(const ResumeReply &rep)
{
    std::vector<std::uint8_t> out;
    put64(out, rep.sessionId);
    put64(out, rep.recordsProcessed);
    put64(out, rep.chunksProcessed);
    return out;
}

ResumeReply
decodeResumeOk(std::span<const std::uint8_t> payload)
{
    if (payload.size() != 24)
        malformed("ResumeOk", "expected 24 payload bytes, got " +
                                  std::to_string(payload.size()));
    ResumeReply rep;
    rep.sessionId = get64(payload, 0);
    rep.recordsProcessed = get64(payload, 8);
    rep.chunksProcessed = get64(payload, 16);
    return rep;
}

namespace
{

/**
 * LvpStats crosses the wire as its fields in declaration order; the
 * static_assert pins the struct so a new field cannot silently stay
 * behind (the same guard LvpStats::operator+= uses).
 */
constexpr std::size_t LvpStatsWords = 13;
static_assert(sizeof(core::LvpStats) ==
                  LvpStatsWords * sizeof(std::uint64_t),
              "LvpStats changed; update the serve metrics codec");

void
putStats(std::vector<std::uint8_t> &out, const core::LvpStats &s)
{
    put64(out, s.loads);
    put64(out, s.noPred);
    put64(out, s.incorrect);
    put64(out, s.correct);
    put64(out, s.constants);
    put64(out, s.actualUnpred);
    put64(out, s.actualPred);
    put64(out, s.unpredIdentified);
    put64(out, s.predIdentified);
    put64(out, s.cvuInsertions);
    put64(out, s.cvuStoreInvalidations);
    put64(out, s.cvuDisplaceInvalidations);
    put64(out, s.cvuStaleHits);
}

core::LvpStats
getStats(std::span<const std::uint8_t> p, std::size_t off)
{
    core::LvpStats s;
    s.loads = get64(p, off + 0 * 8);
    s.noPred = get64(p, off + 1 * 8);
    s.incorrect = get64(p, off + 2 * 8);
    s.correct = get64(p, off + 3 * 8);
    s.constants = get64(p, off + 4 * 8);
    s.actualUnpred = get64(p, off + 5 * 8);
    s.actualPred = get64(p, off + 6 * 8);
    s.unpredIdentified = get64(p, off + 7 * 8);
    s.predIdentified = get64(p, off + 8 * 8);
    s.cvuInsertions = get64(p, off + 9 * 8);
    s.cvuStoreInvalidations = get64(p, off + 10 * 8);
    s.cvuDisplaceInvalidations = get64(p, off + 11 * 8);
    s.cvuStaleHits = get64(p, off + 12 * 8);
    return s;
}

} // namespace

std::vector<std::uint8_t>
encodeMetrics(const SessionMetrics &m)
{
    std::vector<std::uint8_t> out;
    put64(out, m.sessionId);
    put64(out, m.recordsProcessed);
    put64(out, m.chunksProcessed);
    put8(out, m.final_ ? 1 : 0);
    putStats(out, m.stats);
    return out;
}

SessionMetrics
decodeMetrics(std::span<const std::uint8_t> payload)
{
    constexpr std::size_t want = 8 + 8 + 8 + 1 + LvpStatsWords * 8;
    if (payload.size() != want)
        malformed("MetricsReply",
                  "expected " + std::to_string(want) +
                      " payload bytes, got " +
                      std::to_string(payload.size()));
    SessionMetrics m;
    m.sessionId = get64(payload, 0);
    m.recordsProcessed = get64(payload, 8);
    m.chunksProcessed = get64(payload, 16);
    if (payload[24] > 1)
        malformed("MetricsReply", "final byte out of range");
    m.final_ = payload[24] == 1;
    m.stats = getStats(payload, 25);
    return m;
}

std::vector<std::uint8_t>
encodeError(ErrorKind kind, std::string_view message)
{
    std::vector<std::uint8_t> out;
    put8(out, static_cast<std::uint8_t>(kind));
    out.insert(out.end(), message.begin(), message.end());
    return out;
}

ErrorKind
decodeError(std::span<const std::uint8_t> payload, std::string &message)
{
    if (payload.empty())
        malformed("Error", "missing kind byte");
    if (payload[0] > static_cast<std::uint8_t>(ErrorKind::Injected))
        malformed("Error", "unknown error kind " +
                               std::to_string(payload[0]));
    message.assign(payload.begin() + 1, payload.end());
    return static_cast<ErrorKind>(payload[0]);
}

} // namespace lvplib::serve

#include "serve/trace_lru.hh"

#include "obs/metrics.hh"

namespace lvplib::serve
{

namespace
{

/** serve.lru.* obs mirrors, resolved once (registry refs are stable
 *  for the registry's lifetime). All volatile: cache effectiveness
 *  legitimately varies run to run. */
struct LruObs
{
    obs::Counter &hits = obs::metrics().counter("serve.lru.hits");
    obs::Counter &misses = obs::metrics().counter("serve.lru.misses");
    obs::Counter &inserts = obs::metrics().counter("serve.lru.inserts");
    obs::Counter &evictions =
        obs::metrics().counter("serve.lru.evictions");
    obs::Gauge &bytes =
        obs::metrics().gauge("serve.lru.bytes", /*isVolatile=*/true);
};

LruObs &
lruObs()
{
    static LruObs o;
    return o;
}

} // namespace

TraceLru::TraceLru(std::uint64_t maxBytes) : maxBytes_(maxBytes) {}

CompressedBlob
TraceLru::get(std::uint64_t fingerprint)
{
    std::lock_guard<std::mutex> lock(m_);
    auto it = index_.find(fingerprint);
    if (it == index_.end()) {
        ++misses_;
        lruObs().misses.add();
        return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    lruObs().hits.add();
    return it->second->blob;
}

bool
TraceLru::contains(std::uint64_t fingerprint) const
{
    std::lock_guard<std::mutex> lock(m_);
    return index_.count(fingerprint) != 0;
}

void
TraceLru::insert(std::uint64_t fingerprint, CompressedBlob blob)
{
    if (!blob || blobBytes(blob) > maxBytes_)
        return;
    std::lock_guard<std::mutex> lock(m_);
    auto it = index_.find(fingerprint);
    if (it != index_.end()) {
        // First writer wins: the key is a content fingerprint, so a
        // re-insert carries the same records; keep the shared copy.
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    bytes_ += blobBytes(blob);
    lru_.push_front(Entry{fingerprint, std::move(blob)});
    index_[fingerprint] = lru_.begin();
    lruObs().inserts.add();
    evictToFit();
    lruObs().bytes.set(static_cast<double>(bytes_));
}

void
TraceLru::evictToFit()
{
    while (bytes_ > maxBytes_ && !lru_.empty()) {
        Entry &victim = lru_.back();
        bytes_ -= blobBytes(victim.blob);
        index_.erase(victim.fingerprint);
        lru_.pop_back();
        ++evictions_;
        lruObs().evictions.add();
    }
}

std::uint64_t
TraceLru::bytes() const
{
    std::lock_guard<std::mutex> lock(m_);
    return bytes_;
}

std::size_t
TraceLru::entries() const
{
    std::lock_guard<std::mutex> lock(m_);
    return lru_.size();
}

std::uint64_t
TraceLru::hits() const
{
    std::lock_guard<std::mutex> lock(m_);
    return hits_;
}

std::uint64_t
TraceLru::misses() const
{
    std::lock_guard<std::mutex> lock(m_);
    return misses_;
}

std::uint64_t
TraceLru::evictions() const
{
    std::lock_guard<std::mutex> lock(m_);
    return evictions_;
}

} // namespace lvplib::serve

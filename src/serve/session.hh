/**
 * @file
 * One serving session: the per-client unit of predictor state.
 *
 * This is the server half of the per-session/shared split (ROADMAP
 * item 3): immutable artifacts — programs, on-disk traces, hot
 * decoded streams — stay shared process-wide (RunCache, TraceLru),
 * while everything mutable a client touches lives here, instantiated
 * per OPEN_SESSION from the PR 7 predictor registry. Two sessions
 * never share a table, a counter, or a lock beyond the obs registry's
 * atomics, so one client's stream (or crash, or injected fault)
 * cannot perturb another's statistics — the isolation property the
 * soak test asserts byte for byte.
 *
 * Each session runs a dedicated worker thread fed through a bounded
 * chunk queue. The connection handler blocks in push() when the queue
 * is full, which stops it reading the socket, which fills the kernel
 * buffer, which blocks the client's send: backpressure end to end
 * with no unbounded buffering anywhere in the server.
 */

#ifndef LVPLIB_SERVE_SESSION_HH
#define LVPLIB_SERVE_SESSION_HH

#include <any>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "core/value_predictor.hh"
#include "serve/protocol.hh"
#include "serve/trace_lru.hh"

namespace lvplib::serve
{

/**
 * Everything needed to revive a session on a new connection: the
 * predictor's type-erased table state (ValuePredictor::snapshotState,
 * the same checkpoint contract sharded replay stitches segments
 * with), the statistics accumulated so far, and the record/chunk
 * offsets the client must continue streaming from. Stats restore as
 * a base added via LvpStats::operator+= — the additivity sharded
 * replay proves byte-identical to one serial pass.
 */
struct SessionCheckpoint
{
    std::string predictor;
    std::any state; ///< ValuePredictor::snapshotState()
    core::LvpStats stats;
    std::uint64_t recordsProcessed = 0;
    std::uint64_t chunksProcessed = 0;
};

/** A per-client predictor run; see file comment. */
class Session
{
  public:
    /**
     * @param id Server-unique session id (echoed in MetricsReply).
     * @param info Registry entry to instantiate the predictor from.
     * @param maxQueuedChunks Bounded-queue depth; push() blocks when
     * this many chunks are waiting.
     * @param resume Revive from this checkpoint (restoreState before
     * the worker starts); nullptr opens a fresh session.
     */
    Session(std::uint64_t id, const core::PredictorInfo &info,
            std::size_t maxQueuedChunks,
            const SessionCheckpoint *resume = nullptr);

    /** Aborts any queued work and joins the worker. */
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /**
     * Enqueue one chunk for the worker, blocking while the queue is
     * full. Shared LRU blobs and freshly streamed chunks ride the
     * same path, so a cached replay sees the exact per-chunk
     * processing order a streamed one does.
     * @return false when the session was aborted (the chunk is
     * dropped); the caller should stop feeding.
     */
    bool push(TraceBlob chunk);

    /**
     * Close the queue and wait until the worker has processed
     * everything already pushed (idempotent). After drain() the
     * final snapshot is stable.
     */
    void drain();

    /** Unblock pushers and discard queued chunks (server teardown). */
    void abort();

    /**
     * Point-in-time statistics. Mid-stream snapshots land on a chunk
     * boundary (the worker holds the stats lock per chunk); after
     * drain() the snapshot is the session's final answer and is
     * byte-identical to the offline run of the same stream.
     */
    SessionMetrics snapshot() const;

    /**
     * Extract a resume checkpoint. Call after drain() so everything
     * already pushed is applied: the checkpoint then covers exactly
     * records [0, recordsProcessed) and a session revived from it is
     * byte-identical to one that never disconnected.
     */
    SessionCheckpoint checkpoint() const;

    std::uint64_t id() const { return id_; }
    const std::string &predictor() const { return predictorName_; }

    /** Current queue depth (serve.queue_depth telemetry). */
    std::size_t queueDepth() const;

  private:
    void workerLoop();

    const std::uint64_t id_;
    const std::string predictorName_;

    mutable std::mutex statsMutex_; ///< guards unit_ and the counters
    std::unique_ptr<core::ValuePredictor> unit_;
    core::LvpStats baseStats_; ///< pre-resume stats (zero when fresh)
    std::uint64_t recordsProcessed_ = 0;
    std::uint64_t chunksProcessed_ = 0;

    mutable std::mutex queueMutex_;
    std::condition_variable queueNotFull_;
    std::condition_variable queueChanged_;
    std::deque<TraceBlob> queue_;
    const std::size_t maxQueuedChunks_;
    bool closed_ = false;  ///< no further push(); worker exits when dry
    bool aborted_ = false; ///< discard queued work
    bool workerDone_ = false;

    std::thread worker_;
};

} // namespace lvplib::serve

#endif // LVPLIB_SERVE_SESSION_HH

/**
 * @file
 * Supervisor: multi-process scale-out for lvp-serve (ROADMAP item 3's
 * "multi-process scale-out behind one endpoint").
 *
 * The parent binds the listening socket *before* forking (no threads
 * exist yet, so the fork is safe), then forks N workers that each run
 * workerMain with their inherited copy of the fd — the kernel load-
 * balances accept() across them, so every worker serves the same
 * endpoint with zero handoff machinery. The parent never serves; it
 * supervises:
 *
 *  - waitpid(WNOHANG) reaping: no worker ever lingers as a zombie,
 *    whether it exited, crashed, or was killed;
 *  - restart with exponential backoff: a dying worker slot restarts
 *    at backoffInitialMs, doubling per consecutive death up to
 *    backoffMaxMs (the engine.retry.* discipline applied to
 *    processes); a worker that survived a while resets its slot's
 *    backoff. Restarted workers re-inherit the still-open listen fd,
 *    so the endpoint never blips;
 *  - whole-tree drain: on shutdown the supervisor forwards SIGTERM
 *    to every live worker (each drains its own sessions), waits
 *    drainMs, SIGKILLs stragglers, and reaps everything before
 *    returning — after run() returns there are no children left.
 *
 * Telemetry: serve.supervisor.* counters (worker deaths, restarts)
 * register lazily on the first event, so a run whose workers never
 * die produces a metrics JSON byte-identical to a single-process run.
 *
 * Worker processes must establish their own signal handling inside
 * workerMain — dispositions and any self-pipe fds inherited from the
 * parent belong to the parent's shutdown path, not the worker's.
 */

#ifndef LVPLIB_SERVE_SUPERVISOR_HH
#define LVPLIB_SERVE_SUPERVISOR_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include <sys/types.h>

namespace lvplib::serve
{

/** Supervision policy. */
struct SupervisorOptions
{
    unsigned workers = 2;              ///< worker process count
    std::uint64_t backoffInitialMs = 25; ///< first restart delay
    std::uint64_t backoffMaxMs = 2000;   ///< restart delay ceiling
    std::uint64_t drainMs = 2000; ///< SIGTERM->SIGKILL escalation window
    std::string tag = "lvpserve"; ///< log-line prefix
};

/** Forks, restarts, reaps, and drains worker processes; see file
 *  comment. */
class Supervisor
{
  public:
    /**
     * @param workerMain Runs in each forked child; its return value
     * becomes the child's exit status (the child _Exit()s, it never
     * returns through the caller's stack).
     */
    using WorkerMain = std::function<int(unsigned workerIndex)>;

    Supervisor(SupervisorOptions opts, WorkerMain workerMain);

    /**
     * Spawn the workers and supervise until a byte arrives on
     * @p wakeFd (the tool's self-pipe signal path), then drain the
     * whole tree. @return 0 after a clean drain.
     */
    int run(int wakeFd);

    /** Worker restarts performed so far (for tests and logs). */
    std::uint64_t restarts() const
    {
        return restarts_.load(std::memory_order_relaxed);
    }

    /** Worker deaths observed so far. */
    std::uint64_t deaths() const
    {
        return deaths_.load(std::memory_order_relaxed);
    }

    /** Pids of currently-live workers (snapshot). */
    std::vector<pid_t> livePids() const;

  private:
    struct Slot
    {
        pid_t pid = -1; ///< -1 while waiting for a backoff restart
        unsigned consecutiveFailures = 0;
        std::chrono::steady_clock::time_point startedAt;
        std::chrono::steady_clock::time_point restartAt;
    };

    void spawn(unsigned idx);
    /** Reap dead children; schedule their slots for restart.
     *  @return true when any child was reaped. */
    bool reap(bool stopping);
    void drainTree();

    SupervisorOptions opts_;
    WorkerMain workerMain_;
    mutable std::mutex m_; ///< guards slots_ (livePids from any thread)
    std::vector<Slot> slots_;
    std::atomic<std::uint64_t> restarts_{0};
    std::atomic<std::uint64_t> deaths_{0};
};

} // namespace lvplib::serve

#endif // LVPLIB_SERVE_SUPERVISOR_HH

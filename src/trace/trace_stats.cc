#include "trace/trace_stats.hh"

namespace lvplib::trace
{

void
TraceStats::consume(const TraceRecord &rec)
{
    ++instructions_;
    const auto &inst = *rec.inst;
    ++fuCounts_[static_cast<std::size_t>(inst.fu())];
    if (inst.load()) {
        ++loads_;
        ++loadClasses_[static_cast<std::size_t>(inst.dataClass)];
    } else if (inst.store()) {
        ++stores_;
    } else if (inst.branch()) {
        ++branches_;
        if (rec.taken)
            ++takenBranches_;
    }
}

void
TraceStats::clear()
{
    *this = TraceStats();
}

} // namespace lvplib::trace

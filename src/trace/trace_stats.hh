/**
 * @file
 * A sink that accumulates the aggregate trace statistics reported in
 * the paper's Table 1 (dynamic instruction and load counts) plus
 * opcode-class and data-class breakdowns used by several experiments.
 */

#ifndef LVPLIB_TRACE_TRACE_STATS_HH
#define LVPLIB_TRACE_TRACE_STATS_HH

#include <array>
#include <cstdint>

#include "trace/trace.hh"

namespace lvplib::trace
{

/** Aggregate dynamic-instruction statistics for one trace. */
class TraceStats : public TraceSink
{
  public:
    void consume(const TraceRecord &rec) override;

    void
    consumeBatch(std::span<const TraceRecord> recs) override
    {
        // Qualified call: one virtual dispatch per batch, not per
        // record.
        for (const TraceRecord &rec : recs)
            TraceStats::consume(rec);
    }

    std::uint64_t instructions() const { return instructions_; }
    std::uint64_t loads() const { return loads_; }
    std::uint64_t stores() const { return stores_; }
    std::uint64_t branches() const { return branches_; }
    std::uint64_t takenBranches() const { return takenBranches_; }

    /** Dynamic count per FU class. */
    std::uint64_t
    fuCount(isa::FuType t) const
    {
        return fuCounts_[static_cast<std::size_t>(t)];
    }

    /** Dynamic load count per data class (Figure 2 denominators). */
    std::uint64_t
    loadClassCount(isa::DataClass c) const
    {
        return loadClasses_[static_cast<std::size_t>(c)];
    }

    void clear();

  private:
    std::uint64_t instructions_ = 0;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t branches_ = 0;
    std::uint64_t takenBranches_ = 0;
    std::array<std::uint64_t, isa::NumFuTypes> fuCounts_{};
    std::array<std::uint64_t, 4> loadClasses_{};
};

} // namespace lvplib::trace

#endif // LVPLIB_TRACE_TRACE_STATS_HH

#include "trace/trace_file.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstring>

#include <unistd.h>

#include "chaos/chaos.hh"
#include "obs/metrics.hh"
#include "trace/columnar.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace lvplib::trace
{

namespace
{

constexpr std::size_t RecordBytes = TraceRecordBytes;

/**
 * Buffer sizing. The v2 reader fills up to ReaderBufRecords per
 * fread; v2 replay() decodes and forwards ReplayBatchRecords per
 * consumeBatch (v3 forwards whole decoded blocks); the writer flushes
 * its encode buffer once it holds WriterBufBytes. Sized so a buffer
 * comfortably exceeds the stdio / page-cache transfer granularity
 * while staying cache-friendly.
 */
constexpr std::size_t ReaderBufRecords = 64 * 1024;
constexpr std::size_t ReplayBatchRecords = 4096;
constexpr std::size_t WriterBufBytes = 1u << 20;

constexpr char HeaderMagic[8] = {'L', 'V', 'P', 'T',
                                 'R', 'A', 'C', 'E'};
constexpr char FooterMagic[8] = {'E', 'C', 'A', 'R',
                                 'T', 'P', 'V', 'L'};

/** The v3 decoders scatter the pc/effAddr/value columns straight into
 *  the TraceRecord array handed to consumeBatch; that requires the
 *  u64 fields to sit on u64-slot boundaries of the struct. */
static_assert(sizeof(TraceRecord) % sizeof(std::uint64_t) == 0);
static_assert(offsetof(TraceRecord, pc) % sizeof(std::uint64_t) == 0);
static_assert(offsetof(TraceRecord, effAddr) %
                  sizeof(std::uint64_t) == 0);
static_assert(offsetof(TraceRecord, value) %
                  sizeof(std::uint64_t) == 0);

constexpr std::size_t RecordStride =
    sizeof(TraceRecord) / sizeof(std::uint64_t);

void
putU64(std::uint8_t *p, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

void
putU32(std::uint8_t *p, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

/** True when a v2 record's one-byte fields decode to legal values. */
bool
recordBytesValid(const std::uint8_t *rec)
{
    return rec[24] <= 1 && rec[25] < NumPredStates;
}

/** Parsed header + footer of an open trace file. */
struct Envelope
{
    std::uint64_t fingerprint = 0;
    std::uint64_t records = 0;
    std::uint64_t checksum = 0;
    std::uint32_t version = 0;
    std::uint32_t blockRecords = 0; ///< v3 only
    std::uint64_t numBlocks = 0;    ///< v3 only
    std::uint64_t indexStart = 0;   ///< v3: file offset of the index
    std::uint64_t fileBytes = 0;
};

/**
 * Validate the envelope of @p f and leave the stream positioned at
 * the first payload byte. On failure @p detail explains the
 * specifics.
 */
TraceFileStatus
readEnvelope(std::FILE *f, Envelope &env, std::string &detail)
{
    if (std::fseek(f, 0, SEEK_END) != 0)
        return TraceFileStatus::ReadFailed;
    long size = std::ftell(f);
    if (size < 0)
        return TraceFileStatus::ReadFailed;
    env.fileBytes = static_cast<std::uint64_t>(size);
    if (static_cast<std::size_t>(size) <
        TraceHeaderBytes + TraceFooterBytes) {
        detail = std::to_string(size) + " bytes, need at least " +
                 std::to_string(TraceHeaderBytes + TraceFooterBytes);
        return TraceFileStatus::TooSmall;
    }

    std::array<std::uint8_t, TraceHeaderBytes> hdr;
    if (std::fseek(f, 0, SEEK_SET) != 0 ||
        std::fread(hdr.data(), hdr.size(), 1, f) != 1)
        return TraceFileStatus::ReadFailed;
    if (std::memcmp(hdr.data(), HeaderMagic, sizeof(HeaderMagic)) != 0)
        return TraceFileStatus::BadMagic;
    env.version = getU32(&hdr[8]);
    if (env.version != TraceFormatVersion &&
        env.version != TraceFormatVersionV2) {
        detail = "file version " + std::to_string(env.version) +
                 ", expected " +
                 std::to_string(TraceFormatVersionV2) + " or " +
                 std::to_string(TraceFormatVersion);
        return TraceFileStatus::BadVersion;
    }
    std::uint32_t field = getU32(&hdr[12]);
    if (env.version == TraceFormatVersionV2) {
        if (field != RecordBytes) {
            detail = "record size " + std::to_string(field) +
                     ", expected " + std::to_string(RecordBytes);
            return TraceFileStatus::BadRecordSize;
        }
    } else {
        if (field < 1 || field > TraceMaxBlockRecords) {
            detail = "block records " + std::to_string(field) +
                     " outside [1, " +
                     std::to_string(TraceMaxBlockRecords) + "]";
            return TraceFileStatus::BadRecordSize;
        }
        env.blockRecords = field;
    }
    env.fingerprint = getU64(&hdr[16]);

    std::array<std::uint8_t, TraceFooterBytes> ftr;
    if (std::fseek(f, -static_cast<long>(TraceFooterBytes),
                   SEEK_END) != 0 ||
        std::fread(ftr.data(), ftr.size(), 1, f) != 1)
        return TraceFileStatus::ReadFailed;
    if (std::memcmp(ftr.data(), FooterMagic, sizeof(FooterMagic)) !=
        0) {
        detail = "footer magic missing (interrupted write?)";
        return TraceFileStatus::BadFooter;
    }
    env.records = getU64(&ftr[8]);
    env.checksum = getU64(&ftr[16]);

    std::uint64_t payload = static_cast<std::uint64_t>(size) -
                            TraceHeaderBytes - TraceFooterBytes;
    if (env.version == TraceFormatVersionV2) {
        if (payload % RecordBytes != 0) {
            detail = std::to_string(payload % RecordBytes) +
                     " trailing bytes after " +
                     std::to_string(payload / RecordBytes) +
                     " whole records";
            return TraceFileStatus::PartialRecord;
        }
        if (payload / RecordBytes != env.records) {
            detail = "payload holds " +
                     std::to_string(payload / RecordBytes) +
                     " records, footer promises " +
                     std::to_string(env.records);
            return TraceFileStatus::CountMismatch;
        }
    } else {
        env.numBlocks = env.records / env.blockRecords +
                        (env.records % env.blockRecords != 0 ? 1 : 0);
        if (env.numBlocks > payload / 8) {
            detail = "file too small for a " +
                     std::to_string(env.numBlocks) + "-block index";
            return TraceFileStatus::BadBlock;
        }
        env.indexStart = static_cast<std::uint64_t>(size) -
                         TraceFooterBytes - env.numBlocks * 8;
        std::uint64_t blockArea = env.indexStart - TraceHeaderBytes;
        if (env.numBlocks == 0 && blockArea != 0) {
            detail = std::to_string(blockArea) +
                     " payload bytes but zero records";
            return TraceFileStatus::BadBlock;
        }
        if (blockArea / TraceBlockHeaderBytes < env.numBlocks) {
            detail = std::to_string(blockArea) +
                     " payload bytes cannot hold " +
                     std::to_string(env.numBlocks) + " blocks";
            return TraceFileStatus::BadBlock;
        }
    }

    if (std::fseek(f, static_cast<long>(TraceHeaderBytes),
                   SEEK_SET) != 0)
        return TraceFileStatus::ReadFailed;
    return TraceFileStatus::Ok;
}

/**
 * Read and structurally validate the v3 block index: offsets must
 * start at the first payload byte, strictly increase, and leave every
 * block at least a block header long, tiling [TraceHeaderBytes,
 * indexStart) exactly. Leaves the stream position unspecified.
 */
TraceFileStatus
loadBlockIndex(std::FILE *f, const Envelope &env,
               std::vector<std::uint64_t> &index, std::string &detail)
{
    index.assign(static_cast<std::size_t>(env.numBlocks), 0);
    if (env.numBlocks == 0)
        return TraceFileStatus::Ok;
    if (std::fseek(f, static_cast<long>(env.indexStart), SEEK_SET) !=
        0)
        return TraceFileStatus::ReadFailed;
    std::vector<std::uint8_t> raw(
        static_cast<std::size_t>(env.numBlocks) * 8);
    if (std::fread(raw.data(), raw.size(), 1, f) != 1)
        return TraceFileStatus::ReadFailed;
    for (std::size_t b = 0; b < index.size(); ++b)
        index[b] = getU64(&raw[b * 8]);
    for (std::size_t b = 0; b < index.size(); ++b) {
        std::uint64_t off = index[b];
        std::uint64_t next =
            b + 1 < index.size() ? index[b + 1] : env.indexStart;
        if (b == 0 && off != TraceHeaderBytes) {
            detail = "index[0] = " + std::to_string(off) +
                     ", expected " + std::to_string(TraceHeaderBytes);
            return TraceFileStatus::BadBlock;
        }
        if (next <= off || next - off < TraceBlockHeaderBytes) {
            detail = "block " + std::to_string(b) + " spans [" +
                     std::to_string(off) + ", " +
                     std::to_string(next) + ")";
            return TraceFileStatus::BadBlock;
        }
    }
    return TraceFileStatus::Ok;
}

/** Decoded v3 block header. */
struct BlockHeader
{
    std::uint32_t n = 0;
    std::uint32_t pcBytes = 0;
    std::uint32_t addrBytes = 0;
    std::uint32_t valueBytes = 0;
    std::uint64_t checksum = 0;
};

/**
 * Parse block @p b's header out of its @p len on-disk bytes and
 * cross-check it: the record count must match what the footer promises
 * for this block, and the column sizes must tile the block exactly.
 */
bool
parseBlockHeader(const std::uint8_t *data, std::uint64_t len,
                 std::uint64_t expectN, BlockHeader &bh,
                 std::string &detail)
{
    bh.n = getU32(&data[0]);
    bh.pcBytes = getU32(&data[4]);
    bh.addrBytes = getU32(&data[8]);
    bh.valueBytes = getU32(&data[12]);
    bh.checksum = getU64(&data[16]);
    if (bh.n != expectN) {
        detail = "holds " + std::to_string(bh.n) +
                 " records, expected " + std::to_string(expectN);
        return false;
    }
    std::uint64_t need = TraceBlockHeaderBytes +
                         static_cast<std::uint64_t>(bh.pcBytes) +
                         bh.addrBytes + bh.valueBytes +
                         (static_cast<std::uint64_t>(bh.n) + 7) / 8 +
                         (static_cast<std::uint64_t>(bh.n) + 3) / 4;
    if (need != len) {
        detail = "columns need " + std::to_string(need) +
                 " bytes, block has " + std::to_string(len);
        return false;
    }
    return true;
}

} // namespace

std::uint64_t
programFingerprint(const isa::Program &prog)
{
    std::uint64_t h = FnvOffset;
    auto mixU64 = [&h](std::uint64_t v) {
        std::uint8_t b[8];
        putU64(b, v);
        h = fnv1a(b, sizeof(b), h);
    };
    mixU64(prog.size());
    for (const auto &inst : prog.code()) {
        std::uint8_t b[6] = {
            static_cast<std::uint8_t>(inst.op),
            inst.rd,
            inst.rs1,
            inst.rs2,
            static_cast<std::uint8_t>(inst.cond),
            static_cast<std::uint8_t>(inst.dataClass),
        };
        h = fnv1a(b, sizeof(b), h);
        mixU64(static_cast<std::uint64_t>(inst.imm));
    }
    for (const auto &[addr, byte] : prog.dataImage()) {
        mixU64(addr);
        h = fnv1a(&byte, 1, h);
    }
    for (const auto &[name, addr] : prog.symbols()) {
        h = fnv1a(name.data(), name.size(), h);
        mixU64(addr);
    }
    return h;
}

std::uint64_t
mixFingerprint(std::uint64_t fp, const std::string &salt)
{
    return fnv1a(salt.data(), salt.size(), fp);
}

const char *
traceFileStatusName(TraceFileStatus s)
{
    switch (s) {
      case TraceFileStatus::Ok: return "ok";
      case TraceFileStatus::OpenFailed: return "open-failed";
      case TraceFileStatus::TooSmall: return "too-small";
      case TraceFileStatus::BadMagic: return "bad-magic";
      case TraceFileStatus::BadVersion: return "bad-version";
      case TraceFileStatus::BadRecordSize: return "bad-record-size";
      case TraceFileStatus::BadFingerprint: return "stale-fingerprint";
      case TraceFileStatus::BadFooter: return "bad-footer";
      case TraceFileStatus::PartialRecord: return "partial-record";
      case TraceFileStatus::CountMismatch: return "count-mismatch";
      case TraceFileStatus::BadRecord: return "bad-record";
      case TraceFileStatus::BadBlock: return "bad-block";
      case TraceFileStatus::ChecksumMismatch:
        return "checksum-mismatch";
      case TraceFileStatus::ReadFailed: return "read-failed";
      case TraceFileStatus::WriteFailed: return "write-failed";
    }
    return "?";
}

TraceVerifyReport
verifyTraceFile(const std::string &path,
                std::optional<std::uint64_t> expectFingerprint)
{
    TraceVerifyReport rep;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        rep.status = TraceFileStatus::OpenFailed;
        return rep;
    }
    Envelope env;
    rep.status = readEnvelope(f, env, rep.detail);
    rep.fingerprint = env.fingerprint;
    rep.records = env.records;
    rep.version = env.version;
    rep.fileBytes = env.fileBytes;
    if (rep.status != TraceFileStatus::Ok) {
        std::fclose(f);
        return rep;
    }
    if (expectFingerprint && env.fingerprint != *expectFingerprint) {
        rep.status = TraceFileStatus::BadFingerprint;
        rep.detail = "generating program or run key changed";
        std::fclose(f);
        return rep;
    }
    if (env.version == TraceFormatVersionV2) {
        std::uint64_t checksum = FnvOffset;
        std::array<std::uint8_t, RecordBytes> buf;
        for (std::uint64_t i = 0; i < env.records; ++i) {
            if (std::fread(buf.data(), buf.size(), 1, f) != 1) {
                rep.status = TraceFileStatus::ReadFailed;
                rep.detail =
                    "short read at record " + std::to_string(i);
                std::fclose(f);
                return rep;
            }
            if (!recordBytesValid(buf.data())) {
                rep.status = TraceFileStatus::BadRecord;
                rep.detail = "record " + std::to_string(i) +
                             ": taken=" + std::to_string(buf[24]) +
                             " pred=" + std::to_string(buf[25]);
                std::fclose(f);
                return rep;
            }
            checksum = fnv1a(buf.data(), buf.size(), checksum);
        }
        std::fclose(f);
        if (checksum != env.checksum) {
            rep.status = TraceFileStatus::ChecksumMismatch;
            rep.detail = "payload bytes do not match footer checksum";
        }
        return rep;
    }

    std::vector<std::uint64_t> index;
    rep.status = loadBlockIndex(f, env, index, rep.detail);
    if (rep.status != TraceFileStatus::Ok) {
        std::fclose(f);
        return rep;
    }
    if (std::fseek(f, static_cast<long>(TraceHeaderBytes),
                   SEEK_SET) != 0) {
        rep.status = TraceFileStatus::ReadFailed;
        std::fclose(f);
        return rep;
    }
    std::uint64_t checksum = FnvOffset;
    std::vector<std::uint8_t> buf;
    for (std::size_t b = 0; b < index.size(); ++b) {
        std::uint64_t len =
            (b + 1 < index.size() ? index[b + 1] : env.indexStart) -
            index[b];
        buf.resize(static_cast<std::size_t>(len));
        if (std::fread(buf.data(), 1, buf.size(), f) != buf.size()) {
            rep.status = TraceFileStatus::ReadFailed;
            rep.detail = "short read at block " + std::to_string(b);
            std::fclose(f);
            return rep;
        }
        std::uint64_t first =
            static_cast<std::uint64_t>(b) * env.blockRecords;
        std::uint64_t expectN = std::min<std::uint64_t>(
            env.records - first, env.blockRecords);
        BlockHeader bh;
        std::string d;
        if (!parseBlockHeader(buf.data(), len, expectN, bh, d)) {
            rep.status = TraceFileStatus::BadBlock;
            rep.detail = "block " + std::to_string(b) + ": " + d;
            std::fclose(f);
            return rep;
        }
        if (fnv1a(buf.data() + TraceBlockHeaderBytes,
                  buf.size() - TraceBlockHeaderBytes) != bh.checksum) {
            rep.status = TraceFileStatus::ChecksumMismatch;
            rep.detail = "block " + std::to_string(b) +
                         " payload does not match its checksum";
            std::fclose(f);
            return rep;
        }
        checksum = fnv1a(buf.data(), buf.size(), checksum);
    }
    std::fclose(f);
    if (checksum != env.checksum) {
        rep.status = TraceFileStatus::ChecksumMismatch;
        rep.detail = "payload bytes do not match footer checksum";
    }
    return rep;
}

TraceVerifyReport
migrateTraceFile(const std::string &path)
{
    TraceVerifyReport rep = verifyTraceFile(path);
    if (!rep.ok() || rep.version == TraceFormatVersion)
        return rep;

    // Unique sibling temp, same `<name>.trace.tmp.<pid>.<n>` shape the
    // run-cache writers publish through (and the cache scanner prunes).
    static std::atomic<std::uint64_t> tempSeq{0};
    std::string tmp = path + ".tmp." + std::to_string(::getpid()) +
                      "." + std::to_string(tempSeq.fetch_add(1));

    std::FILE *in = std::fopen(path.c_str(), "rb");
    if (!in) {
        rep.status = TraceFileStatus::OpenFailed;
        return rep;
    }
    Envelope env;
    std::string detail;
    TraceFileStatus st = readEnvelope(in, env, detail);
    if (st != TraceFileStatus::Ok ||
        env.version != TraceFormatVersionV2) {
        // The file changed between verify and transcode; re-report.
        std::fclose(in);
        return verifyTraceFile(path);
    }

    TraceFileWriter out(tmp, env.fingerprint);
    std::array<std::uint8_t, RecordBytes> buf;
    bool readOk = true;
    for (std::uint64_t i = 0; i < env.records; ++i) {
        if (std::fread(buf.data(), buf.size(), 1, in) != 1) {
            readOk = false;
            break;
        }
        out.appendRaw(getU64(&buf[0]), getU64(&buf[8]),
                      getU64(&buf[16]), buf[24] != 0,
                      static_cast<PredState>(buf[25]));
    }
    std::fclose(in);
    if (!readOk || !out.close()) {
        std::remove(tmp.c_str());
        rep.status = TraceFileStatus::WriteFailed;
        rep.detail = !readOk ? "source shrank during transcode"
                             : out.error();
        return rep;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        rep.status = TraceFileStatus::WriteFailed;
        rep.detail = "cannot rename temp over original";
        return rep;
    }
    return verifyTraceFile(path);
}

TraceFileWriter::TraceFileWriter(const std::string &path,
                                 std::uint64_t fingerprint,
                                 const TraceWriterOptions &opts)
    : file_(std::fopen(path.c_str(), "wb")), path_(path),
      fingerprint_(fingerprint), opts_(opts), checksum_(FnvOffset)
{
    if (!file_) {
        fail("cannot open for writing");
        return;
    }
    bool v2 = opts_.version == TraceFormatVersionV2;
    if ((opts_.version != TraceFormatVersion && !v2) ||
        (!v2 && (opts_.blockRecords < 1 ||
                 opts_.blockRecords > TraceMaxBlockRecords))) {
        fail("unsupported trace writer options");
        return;
    }
    wbuf_.reserve(WriterBufBytes + RecordBytes);
    if (!v2) {
        std::size_t stage = std::min<std::size_t>(
            opts_.blockRecords, TraceBlockRecords);
        stagePc_.reserve(stage);
        stageAddr_.reserve(stage);
        stageVal_.reserve(stage);
        stageTaken_.reserve(stage);
        stagePred_.reserve(stage);
    }
    fileOffset_ = TraceHeaderBytes;
    std::array<std::uint8_t, TraceHeaderBytes> hdr;
    std::memcpy(hdr.data(), HeaderMagic, sizeof(HeaderMagic));
    putU32(&hdr[8], opts_.version);
    putU32(&hdr[12], v2 ? static_cast<std::uint32_t>(RecordBytes)
                        : opts_.blockRecords);
    putU64(&hdr[16], fingerprint_);
    if (std::fwrite(hdr.data(), hdr.size(), 1, file_) != 1)
        fail("header write failed");
}

TraceFileWriter::~TraceFileWriter()
{
    if (!closed_ && !close())
        lvp_warn("trace file '%s': %s", path_.c_str(),
                 error_.c_str());
}

void
TraceFileWriter::fail(const std::string &what)
{
    if (!failed_) {
        failed_ = true;
        error_ = what;
    }
}

void
TraceFileWriter::appendRaw(Addr pc, Addr addrSlot, Word value,
                           bool taken, PredState pred)
{
    if (failed_)
        return;
    if (chaos::engine().shouldInject(chaos::Point::TraceWriteRecord,
                                     fingerprint_, written_)) {
        fail("chaos: injected record write failure");
        return;
    }
    if (opts_.version == TraceFormatVersionV2) {
        std::array<std::uint8_t, RecordBytes> buf;
        putU64(&buf[0], pc);
        putU64(&buf[8], addrSlot);
        putU64(&buf[16], value);
        buf[24] = taken ? 1 : 0;
        buf[25] = static_cast<std::uint8_t>(pred);
        wbuf_.insert(wbuf_.end(), buf.begin(), buf.end());
        checksum_ = fnv1a(buf.data(), buf.size(), checksum_);
        ++written_;
        if (wbuf_.size() >= WriterBufBytes)
            flushBuffer();
        return;
    }
    stagePc_.push_back(pc);
    stageAddr_.push_back(addrSlot);
    stageVal_.push_back(value);
    stageTaken_.push_back(taken ? 1 : 0);
    stagePred_.push_back(static_cast<std::uint8_t>(pred));
    ++written_;
    if (stagePc_.size() >= opts_.blockRecords)
        encodeBlock();
}

void
TraceFileWriter::encodeBlock()
{
    std::size_t n = stagePc_.size();
    if (n == 0 || failed_)
        return;
    colBuf_.assign(TraceBlockHeaderBytes, 0);
    std::size_t at = colBuf_.size();
    encodeDeltaColumn(stagePc_.data(), n, colBuf_);
    std::uint32_t pcBytes =
        static_cast<std::uint32_t>(colBuf_.size() - at);
    at = colBuf_.size();
    encodeSparseColumn(stageAddr_.data(), n, colBuf_);
    std::uint32_t addrBytes =
        static_cast<std::uint32_t>(colBuf_.size() - at);
    at = colBuf_.size();
    encodeSparseColumn(stageVal_.data(), n, colBuf_);
    std::uint32_t valueBytes =
        static_cast<std::uint32_t>(colBuf_.size() - at);
    packBits(stageTaken_.data(), n, colBuf_);
    packCrumbs(stagePred_.data(), n, colBuf_);
    putU32(&colBuf_[0], static_cast<std::uint32_t>(n));
    putU32(&colBuf_[4], pcBytes);
    putU32(&colBuf_[8], addrBytes);
    putU32(&colBuf_[12], valueBytes);
    putU64(&colBuf_[16],
           fnv1a(colBuf_.data() + TraceBlockHeaderBytes,
                 colBuf_.size() - TraceBlockHeaderBytes));
    index_.push_back(fileOffset_);
    fileOffset_ += colBuf_.size();
    checksum_ = fnv1a(colBuf_.data(), colBuf_.size(), checksum_);
    wbuf_.insert(wbuf_.end(), colBuf_.begin(), colBuf_.end());
    stagePc_.clear();
    stageAddr_.clear();
    stageVal_.clear();
    stageTaken_.clear();
    stagePred_.clear();
    if (wbuf_.size() >= WriterBufBytes)
        flushBuffer();
}

void
TraceFileWriter::flushBuffer()
{
    if (wbuf_.empty())
        return;
    // A latched failure discards the whole file; dropping the
    // buffered bytes just gets there faster.
    if (!failed_ &&
        std::fwrite(wbuf_.data(), 1, wbuf_.size(), file_) !=
            wbuf_.size())
        fail("record write failed (disk full?)");
    wbuf_.clear();
}

void
TraceFileWriter::consume(const TraceRecord &rec)
{
    // Memory ops use the second slot for their effective address;
    // indirect branches reuse it for their target (the fields are
    // mutually exclusive, keeping the encoded record compact).
    bool indirect = rec.inst && isa::isIndirectBranch(rec.inst->op);
    appendRaw(rec.pc, indirect ? rec.nextPc : rec.effAddr, rec.value,
              rec.taken, rec.pred);
}

void
TraceFileWriter::consumeBatch(std::span<const TraceRecord> recs)
{
    for (const TraceRecord &rec : recs)
        consume(rec);
}

void
TraceFileWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    if (failed_)
        return;
    if (opts_.version == TraceFormatVersion)
        encodeBlock(); // drain the partial tail block
    flushBuffer();
    if (failed_)
        return;
    if (chaos::engine().shouldInject(chaos::Point::TraceWriteFooter,
                                     fingerprint_, 0)) {
        fail("chaos: injected footer write failure");
        return;
    }
    if (opts_.version == TraceFormatVersion && !index_.empty()) {
        std::vector<std::uint8_t> idx(index_.size() * 8);
        for (std::size_t b = 0; b < index_.size(); ++b)
            putU64(&idx[b * 8], index_[b]);
        if (std::fwrite(idx.data(), idx.size(), 1, file_) != 1) {
            fail("index write failed (disk full?)");
            return;
        }
    }
    std::array<std::uint8_t, TraceFooterBytes> ftr;
    std::memcpy(ftr.data(), FooterMagic, sizeof(FooterMagic));
    putU64(&ftr[8], written_);
    putU64(&ftr[16], checksum_);
    if (std::fwrite(ftr.data(), ftr.size(), 1, file_) != 1) {
        fail("footer write failed (disk full?)");
        return;
    }
    if (std::fflush(file_) != 0)
        fail("flush failed (disk full?)");
}

bool
TraceFileWriter::close()
{
    if (closed_)
        return !failed_;
    closed_ = true;
    finish();
    if (file_) {
        if (std::fclose(file_) != 0)
            fail("close failed (disk full?)");
        file_ = nullptr;
    }
    return !failed_;
}

TraceFileReader::TraceFileReader(
    const std::string &path, const isa::Program &prog,
    std::optional<std::uint64_t> expectFingerprint)
    : file_(std::fopen(path.c_str(), "rb")), prog_(prog), path_(path),
      checksum_(FnvOffset)
{
    if (!file_)
        throw SimError(ErrorKind::TraceIo,
                       detail::formatMsg(
                           "cannot open trace file '%s' for reading",
                           path.c_str()));
    Envelope env;
    std::string detailStr;
    TraceFileStatus st = readEnvelope(file_, env, detailStr);
    if (st != TraceFileStatus::Ok) {
        // The destructor will not run when the constructor throws:
        // close the stream here.
        std::fclose(file_);
        file_ = nullptr;
        throw SimError(ErrorKind::TraceCorrupt,
                       detail::formatMsg(
                           "invalid trace file '%s': %s%s%s",
                           path.c_str(), traceFileStatusName(st),
                           detailStr.empty() ? "" : ": ",
                           detailStr.c_str()));
    }
    if (expectFingerprint && env.fingerprint != *expectFingerprint) {
        std::fclose(file_);
        file_ = nullptr;
        throw SimError(
            ErrorKind::TraceCorrupt,
            detail::formatMsg(
                "invalid trace file '%s': %s (have %016llx, "
                "expected %016llx)",
                path.c_str(),
                traceFileStatusName(TraceFileStatus::BadFingerprint),
                static_cast<unsigned long long>(env.fingerprint),
                static_cast<unsigned long long>(*expectFingerprint)));
    }
    records_ = env.records;
    end_ = records_;
    version_ = env.version;
    fingerprint_ = env.fingerprint;
    expectChecksum_ = env.checksum;
    if (version_ == TraceFormatVersionV2) {
        iobuf_.resize(
            static_cast<std::size_t>(std::min<std::uint64_t>(
                records_, ReaderBufRecords)) *
            RecordBytes);
        return;
    }
    blockRecords_ = env.blockRecords;
    indexStart_ = env.indexStart;
    st = loadBlockIndex(file_, env, index_, detailStr);
    if (st == TraceFileStatus::Ok &&
        std::fseek(file_, static_cast<long>(TraceHeaderBytes),
                   SEEK_SET) != 0)
        st = TraceFileStatus::ReadFailed;
    if (st != TraceFileStatus::Ok) {
        std::fclose(file_);
        file_ = nullptr;
        throw SimError(ErrorKind::TraceCorrupt,
                       detail::formatMsg(
                           "invalid trace file '%s': %s%s%s",
                           path.c_str(), traceFileStatusName(st),
                           detailStr.empty() ? "" : ": ",
                           detailStr.c_str()));
    }
    filePos_ = TraceHeaderBytes;
    prefetch_ =
        envUnsigned("LVPLIB_TRACE_PREFETCH").value_or(1) != 0;
    decoded_.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(records_, blockRecords_)));
}

TraceFileReader::TraceFileReader(
    const std::string &path, const isa::Program &prog,
    std::optional<std::uint64_t> expectFingerprint,
    const Window &window)
    : TraceFileReader(path, prog, expectFingerprint)
{
    if (window.first > records_ ||
        window.count > records_ - window.first) {
        std::fclose(file_);
        file_ = nullptr;
        throw SimError(
            ErrorKind::TraceCorrupt,
            detail::formatMsg(
                "invalid trace window [%llu, +%llu) for '%s': file "
                "has %llu records",
                static_cast<unsigned long long>(window.first),
                static_cast<unsigned long long>(window.count),
                path.c_str(),
                static_cast<unsigned long long>(records_)));
    }
    seq_ = window.first;
    end_ = window.first + window.count;
    // The whole-payload checksum cannot be verified from a window;
    // callers guarantee the file was verified beforehand.
    verifyChecksum_ = false;
    if (version_ == TraceFormatVersionV2) {
        if (std::fseek(file_,
                       static_cast<long>(TraceHeaderBytes +
                                         window.first * RecordBytes),
                       SEEK_SET) != 0) {
            std::fclose(file_);
            file_ = nullptr;
            throw SimError(ErrorKind::TraceIo,
                           detail::formatMsg(
                               "cannot seek to record %llu in '%s'",
                               static_cast<unsigned long long>(
                                   window.first),
                               path.c_str()));
        }
        bufPos_ = 0;
        bufLen_ = 0;
        iobuf_.resize(
            static_cast<std::size_t>(std::min<std::uint64_t>(
                window.count, ReaderBufRecords)) *
            RecordBytes);
    }
    // v3 seeks lazily: loadBlockFor() jumps straight to the block
    // holding window.first through the index.
}

TraceFileReader::~TraceFileReader()
{
    if (file_)
        std::fclose(file_);
}

void
TraceFileReader::corrupt(const std::string &what) const
{
    throw SimError(ErrorKind::TraceCorrupt,
                   detail::formatMsg("invalid trace file '%s': %s",
                                     path_.c_str(), what.c_str()));
}

void
TraceFileReader::fillBuffer()
{
    std::uint64_t want = std::min<std::uint64_t>(
        end_ - seq_, ReaderBufRecords);
    std::size_t got = std::fread(
        iobuf_.data(), 1,
        static_cast<std::size_t>(want) * RecordBytes, file_);
    // The envelope fixed the file size at open, so a short fill
    // means the file shrank underneath us. Hand back any whole
    // records we did get; the next fill throws at the first record
    // we cannot deliver. Re-align the stream past a partial tail so
    // the failing position is reported exactly once.
    if (std::size_t tail = got % RecordBytes; tail != 0)
        std::fseek(file_, -static_cast<long>(tail), SEEK_CUR);
    std::size_t whole = got / RecordBytes;
    if (whole == 0)
        corrupt(detail::formatMsg(
            "truncated at record %llu of %llu",
            static_cast<unsigned long long>(seq_),
            static_cast<unsigned long long>(records_)));
    bufPos_ = 0;
    bufLen_ = whole * RecordBytes;
}

bool
TraceFileReader::nextV2(TraceRecord &rec)
{
    if (bufPos_ == bufLen_)
        fillBuffer();
    std::uint8_t *buf = iobuf_.data() + bufPos_;
    bufPos_ += RecordBytes;
    if (chaos::engine().enabled() &&
        chaos::engine().shouldInject(chaos::Point::TraceReadFlip,
                                     fingerprint_, seq_)) {
        // Flip one bit of the record as read; the flip is caught by
        // record validation or by the end-of-trace checksum, never
        // silently accepted.
        std::uint64_t h = chaos::engine().faultHash(
            chaos::Point::TraceReadFlip, fingerprint_, seq_);
        buf[h % RecordBytes] ^=
            static_cast<std::uint8_t>(1u << ((h >> 8) % 8));
    }
    if (!recordBytesValid(buf))
        corrupt(detail::formatMsg(
            "%s at record %llu (taken=%u pred=%u)",
            traceFileStatusName(TraceFileStatus::BadRecord),
            static_cast<unsigned long long>(seq_), buf[24], buf[25]));
    checksum_ = fnv1a(buf, RecordBytes, checksum_);
    rec.seq = seq_++;
    rec.pc = getU64(&buf[0]);
    rec.effAddr = getU64(&buf[8]);
    rec.value = getU64(&buf[16]);
    rec.destValue = 0;
    rec.taken = buf[24] != 0;
    rec.pred = static_cast<PredState>(buf[25]);
    if (!prog_.validPc(rec.pc))
        corrupt(detail::formatMsg(
            "record %llu names pc 0x%llx outside the program",
            static_cast<unsigned long long>(rec.seq),
            static_cast<unsigned long long>(rec.pc)));
    rec.inst = &prog_.fetch(rec.pc);
    // Reconstruct the architectural successor.
    if (rec.inst->op == isa::Opcode::HALT) {
        rec.nextPc = rec.pc;
    } else if (rec.inst->branch() && rec.taken) {
        if (isa::isIndirectBranch(rec.inst->op)) {
            // Indirect targets are not stored; they are only needed
            // by the branch predictor, which reads nextPc. Recover
            // it from the addr-slot convention above.
            rec.nextPc = rec.effAddr;
        } else {
            rec.nextPc = static_cast<Addr>(rec.inst->imm);
        }
    } else {
        rec.nextPc = rec.pc + isa::layout::InstBytes;
    }
    return true;
}

std::uint64_t
TraceFileReader::blockBytes(std::uint64_t b) const
{
    return (b + 1 < index_.size() ? index_[b + 1] : indexStart_) -
           index_[b];
}

void
TraceFileReader::loadBlockFor(std::uint64_t seq)
{
    std::uint64_t b = seq / blockRecords_;
    std::uint64_t len = blockBytes(b);
    if (pblockLen_ > 0 && pblockBlock_ == b) {
        cblock_.swap(pblock_);
        pblockLen_ = 0;
    } else {
        pblockLen_ = 0; // any read-ahead is for the wrong block now
        if (filePos_ != index_[b]) {
            if (std::fseek(file_, static_cast<long>(index_[b]),
                           SEEK_SET) != 0)
                throw SimError(
                    ErrorKind::TraceIo,
                    detail::formatMsg(
                        "cannot seek to block %llu in '%s'",
                        static_cast<unsigned long long>(b),
                        path_.c_str()));
            filePos_ = index_[b];
        }
        cblock_.resize(static_cast<std::size_t>(len));
        if (std::fread(cblock_.data(), 1, cblock_.size(), file_) !=
            cblock_.size())
            corrupt(detail::formatMsg(
                "truncated at block %llu of %llu",
                static_cast<unsigned long long>(b),
                static_cast<unsigned long long>(index_.size())));
        filePos_ += len;
    }
    // Read the next compressed block behind the current decode and
    // sweep it into cache, so the fread + decode of block b+1 starts
    // warm (LVPLIB_TRACE_PREFETCH=0 disables).
    std::uint64_t nb = b + 1;
    if (prefetch_ && nb < index_.size() &&
        end_ > nb * static_cast<std::uint64_t>(blockRecords_)) {
        std::uint64_t plen = blockBytes(nb);
        bool ok = filePos_ == index_[nb] ||
                  std::fseek(file_, static_cast<long>(index_[nb]),
                             SEEK_SET) == 0;
        if (ok) {
            filePos_ = index_[nb];
            pblock_.resize(static_cast<std::size_t>(plen));
            if (std::fread(pblock_.data(), 1, pblock_.size(),
                           file_) == pblock_.size()) {
                filePos_ += plen;
                pblockLen_ = pblock_.size();
                pblockBlock_ = nb;
                for (std::size_t i = 0; i < pblock_.size(); i += 64)
                    __builtin_prefetch(pblock_.data() + i);
            }
        }
        if (pblockLen_ == 0) {
            // Defer the error: the retry when the block is actually
            // needed reports truncation with the right context.
            std::clearerr(file_);
            filePos_ = static_cast<std::uint64_t>(-1);
        }
    }
    decodeBlock(b, cblock_.data(), static_cast<std::size_t>(len));
    decPos_ = static_cast<std::size_t>(
        seq - b * static_cast<std::uint64_t>(blockRecords_));
}

void
TraceFileReader::decodeBlock(std::uint64_t b, std::uint8_t *data,
                             std::size_t len)
{
    std::uint64_t first = b * static_cast<std::uint64_t>(blockRecords_);
    std::uint64_t expectN =
        std::min<std::uint64_t>(records_ - first, blockRecords_);
    std::size_t payloadLen = len - TraceBlockHeaderBytes;
    if (chaos::engine().enabled() && payloadLen > 0) {
        // Chaos read-flips hit the compressed bytes; the per-block
        // checksum catches them, never a silently-wrong decode.
        for (std::uint64_t s = first; s < first + expectN; ++s) {
            if (!chaos::engine().shouldInject(
                    chaos::Point::TraceReadFlip, fingerprint_, s))
                continue;
            std::uint64_t h = chaos::engine().faultHash(
                chaos::Point::TraceReadFlip, fingerprint_, s);
            data[TraceBlockHeaderBytes + h % payloadLen] ^=
                static_cast<std::uint8_t>(1u << ((h >> 8) % 8));
        }
    }
    BlockHeader bh;
    std::string d;
    if (!parseBlockHeader(data, len, expectN, bh, d))
        corrupt(std::string(traceFileStatusName(
                    TraceFileStatus::BadBlock)) +
                " at block " + std::to_string(b) + ": " + d);
    if (fnv1a(data + TraceBlockHeaderBytes, payloadLen) !=
        bh.checksum)
        corrupt(std::string(traceFileStatusName(
                    TraceFileStatus::ChecksumMismatch)) +
                " at block " + std::to_string(b));
    checksum_ = fnv1a(data, len, checksum_);

    decoded_.resize(static_cast<std::size_t>(expectN));
    auto *base = reinterpret_cast<std::uint8_t *>(decoded_.data());
    auto slot = [base](std::size_t off) {
        return reinterpret_cast<std::uint64_t *>(base + off);
    };
    const std::uint8_t *pcCol = data + TraceBlockHeaderBytes;
    const std::uint8_t *addrCol = pcCol + bh.pcBytes;
    const std::uint8_t *valCol = addrCol + bh.addrBytes;
    const std::uint8_t *takenBits = valCol + bh.valueBytes;
    const std::uint8_t *predBits =
        takenBits + (static_cast<std::size_t>(expectN) + 7) / 8;
    std::size_t n = static_cast<std::size_t>(expectN);
    if (!decodeDeltaColumn(pcCol, bh.pcBytes,
                           slot(offsetof(TraceRecord, pc)), n,
                           RecordStride) ||
        !decodeSparseColumn(addrCol, bh.addrBytes,
                            slot(offsetof(TraceRecord, effAddr)), n,
                            RecordStride) ||
        !decodeSparseColumn(valCol, bh.valueBytes,
                            slot(offsetof(TraceRecord, value)), n,
                            RecordStride))
        corrupt(std::string(traceFileStatusName(
                    TraceFileStatus::BadBlock)) +
                " at block " + std::to_string(b) +
                ": column payload malformed");

    for (std::size_t i = 0; i < n; ++i) {
        TraceRecord &rec = decoded_[i];
        rec.seq = first + i;
        rec.destValue = 0;
        rec.taken = unpackBit(takenBits, i);
        rec.pred = static_cast<PredState>(unpackCrumb(predBits, i));
        if (!prog_.validPc(rec.pc))
            corrupt(detail::formatMsg(
                "record %llu names pc 0x%llx outside the program",
                static_cast<unsigned long long>(rec.seq),
                static_cast<unsigned long long>(rec.pc)));
        rec.inst = &prog_.fetch(rec.pc);
        // Reconstruct the architectural successor (identical to the
        // v2 reader, so both formats replay the same stream).
        if (rec.inst->op == isa::Opcode::HALT) {
            rec.nextPc = rec.pc;
        } else if (rec.inst->branch() && rec.taken) {
            rec.nextPc = isa::isIndirectBranch(rec.inst->op)
                             ? rec.effAddr
                             : static_cast<Addr>(rec.inst->imm);
        } else {
            rec.nextPc = rec.pc + isa::layout::InstBytes;
        }
    }
}

bool
TraceFileReader::nextV3(TraceRecord &rec)
{
    if (decPos_ == decoded_.size())
        loadBlockFor(seq_);
    rec = decoded_[decPos_++];
    ++seq_;
    return true;
}

bool
TraceFileReader::next(TraceRecord &rec)
{
    if (seq_ == end_) {
        if (verifyChecksum_ && checksum_ != expectChecksum_)
            corrupt(traceFileStatusName(
                TraceFileStatus::ChecksumMismatch));
        return false;
    }
    return version_ == TraceFormatVersionV2 ? nextV2(rec)
                                            : nextV3(rec);
}

std::uint64_t
TraceFileReader::replay(TraceSink &sink)
{
    obs::Counter &batches =
        obs::metrics().counter("trace.replay.batches");
    obs::Counter &batchRecords =
        obs::metrics().counter("trace.replay.batch_records");
    if (version_ == TraceFormatVersionV2) {
        // At least one slot so an empty trace still runs the
        // end-of-trace checksum verification in next().
        std::vector<TraceRecord> batch(static_cast<std::size_t>(
            std::max<std::uint64_t>(
                1, std::min<std::uint64_t>(end_ - seq_,
                                           ReplayBatchRecords))));
        std::uint64_t n = 0;
        for (;;) {
            std::size_t k = 0;
            while (k < batch.size() && next(batch[k]))
                ++k;
            if (k == 0)
                break;
            sink.consumeBatch(std::span<const TraceRecord>(
                batch.data(), k));
            batches.add();
            batchRecords.add(k);
            n += k;
            if (k < batch.size())
                break;
        }
        sink.finish();
        return n;
    }
    // v3: each decoded block IS the batch — consumeBatch sees spans
    // of the reader's own block buffer, with no intermediate copy.
    std::uint64_t n = 0;
    while (seq_ < end_) {
        if (decPos_ == decoded_.size())
            loadBlockFor(seq_);
        std::size_t k = static_cast<std::size_t>(
            std::min<std::uint64_t>(decoded_.size() - decPos_,
                                    end_ - seq_));
        sink.consumeBatch(std::span<const TraceRecord>(
            decoded_.data() + decPos_, k));
        batches.add();
        batchRecords.add(k);
        decPos_ += k;
        seq_ += k;
        n += k;
    }
    if (verifyChecksum_ && checksum_ != expectChecksum_)
        corrupt(
            traceFileStatusName(TraceFileStatus::ChecksumMismatch));
    sink.finish();
    return n;
}

void
AnnotationStream::append(PredState s)
{
    std::uint64_t i = count_++;
    std::size_t byte = static_cast<std::size_t>(i / 4);
    unsigned shift = static_cast<unsigned>((i % 4) * 2);
    if (byte >= bits_.size())
        bits_.push_back(0);
    bits_[byte] = static_cast<std::uint8_t>(
        bits_[byte] | (static_cast<std::uint8_t>(s) << shift));
}

PredState
AnnotationStream::at(std::uint64_t i) const
{
    lvp_assert(i < count_, "annotation index %llu out of range",
               static_cast<unsigned long long>(i));
    std::size_t byte = static_cast<std::size_t>(i / 4);
    unsigned shift = static_cast<unsigned>((i % 4) * 2);
    return static_cast<PredState>((bits_[byte] >> shift) & 0x3);
}

void
AnnotationStream::save(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        throw SimError(ErrorKind::TraceIo,
                       detail::formatMsg(
                           "cannot open annotation file '%s'",
                           path.c_str()));
    std::uint8_t header[8];
    putU64(header, count_);
    bool ok = std::fwrite(header, sizeof(header), 1, f) == 1;
    ok = ok && (bits_.empty() ||
                std::fwrite(bits_.data(), bits_.size(), 1, f) == 1);
    ok = std::fclose(f) == 0 && ok;
    if (!ok)
        throw SimError(ErrorKind::TraceIo,
                       detail::formatMsg(
                           "annotation file '%s': write failed",
                           path.c_str()));
}

AnnotationStream
AnnotationStream::load(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw SimError(ErrorKind::TraceIo,
                       detail::formatMsg(
                           "cannot open annotation file '%s'",
                           path.c_str()));
    std::uint8_t header[8];
    if (std::fread(header, sizeof(header), 1, f) != 1) {
        std::fclose(f);
        throw SimError(ErrorKind::TraceIo,
                       detail::formatMsg(
                           "annotation file '%s' truncated",
                           path.c_str()));
    }
    AnnotationStream s;
    s.count_ = getU64(header);
    s.bits_.resize(static_cast<std::size_t>((s.count_ + 3) / 4));
    if (!s.bits_.empty() &&
        std::fread(s.bits_.data(), s.bits_.size(), 1, f) != 1) {
        std::fclose(f);
        throw SimError(ErrorKind::TraceIo,
                       detail::formatMsg(
                           "annotation file '%s' truncated",
                           path.c_str()));
    }
    std::fclose(f);
    return s;
}

void
AnnotationRecorder::consume(const TraceRecord &rec)
{
    if (rec.inst->load())
        stream_.append(rec.pred);
}

void
AnnotationRecorder::consumeBatch(std::span<const TraceRecord> recs)
{
    for (const TraceRecord &rec : recs)
        if (rec.inst->load())
            stream_.append(rec.pred);
}

void
AnnotationMerger::consume(const TraceRecord &rec)
{
    TraceRecord out = rec;
    if (rec.inst->load())
        out.pred = stream_.at(loadIndex_++);
    down_.consume(out);
}

void
AnnotationMerger::consumeBatch(std::span<const TraceRecord> recs)
{
    batch_.assign(recs.begin(), recs.end());
    for (TraceRecord &out : batch_)
        if (out.inst->load())
            out.pred = stream_.at(loadIndex_++);
    down_.consumeBatch(
        std::span<const TraceRecord>(batch_.data(), batch_.size()));
}

} // namespace lvplib::trace

#include "trace/trace_file.hh"

#include <array>

#include "util/logging.hh"

namespace lvplib::trace
{

namespace
{

constexpr std::size_t RecordBytes = 8 + 8 + 8 + 1 + 1;

void
putU64(std::uint8_t *p, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

TraceFileWriter::TraceFileWriter(const std::string &path)
    : file_(std::fopen(path.c_str(), "wb"))
{
    if (!file_)
        lvp_fatal("cannot open trace file '%s' for writing",
                  path.c_str());
}

TraceFileWriter::~TraceFileWriter()
{
    if (file_)
        std::fclose(file_);
}

void
TraceFileWriter::consume(const TraceRecord &rec)
{
    std::array<std::uint8_t, RecordBytes> buf;
    putU64(&buf[0], rec.pc);
    // Memory ops use the second slot for their effective address;
    // indirect branches reuse it for their target (the fields are
    // mutually exclusive, keeping the record at 26 bytes).
    bool indirect = rec.inst && isa::isIndirectBranch(rec.inst->op);
    putU64(&buf[8], indirect ? rec.nextPc : rec.effAddr);
    putU64(&buf[16], rec.value);
    buf[24] = rec.taken ? 1 : 0;
    buf[25] = static_cast<std::uint8_t>(rec.pred);
    if (std::fwrite(buf.data(), buf.size(), 1, file_) != 1)
        lvp_fatal("trace write failed");
    ++written_;
}

void
TraceFileWriter::finish()
{
    if (!finished_) {
        std::fflush(file_);
        finished_ = true;
    }
}

TraceFileReader::TraceFileReader(const std::string &path,
                                 const isa::Program &prog)
    : file_(std::fopen(path.c_str(), "rb")), prog_(prog)
{
    if (!file_)
        lvp_fatal("cannot open trace file '%s' for reading",
                  path.c_str());
}

TraceFileReader::~TraceFileReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceFileReader::next(TraceRecord &rec)
{
    std::array<std::uint8_t, RecordBytes> buf;
    if (std::fread(buf.data(), buf.size(), 1, file_) != 1)
        return false;
    rec.seq = seq_++;
    rec.pc = getU64(&buf[0]);
    rec.effAddr = getU64(&buf[8]);
    rec.value = getU64(&buf[16]);
    rec.taken = buf[24] != 0;
    rec.pred = static_cast<PredState>(buf[25]);
    rec.inst = &prog_.fetch(rec.pc);
    // Reconstruct the architectural successor.
    if (rec.inst->op == isa::Opcode::HALT) {
        rec.nextPc = rec.pc;
    } else if (rec.inst->branch() && rec.taken) {
        if (isa::isIndirectBranch(rec.inst->op)) {
            // Indirect targets are not stored; they are only needed
            // by the branch predictor, which reads nextPc. Recover
            // it from the value field convention below.
            rec.nextPc = rec.effAddr;
        } else {
            rec.nextPc = static_cast<Addr>(rec.inst->imm);
        }
    } else {
        rec.nextPc = rec.pc + isa::layout::InstBytes;
    }
    return true;
}

std::uint64_t
TraceFileReader::replay(TraceSink &sink)
{
    TraceRecord rec;
    std::uint64_t n = 0;
    while (next(rec)) {
        sink.consume(rec);
        ++n;
    }
    sink.finish();
    return n;
}

void
AnnotationStream::append(PredState s)
{
    std::uint64_t i = count_++;
    std::size_t byte = static_cast<std::size_t>(i / 4);
    unsigned shift = static_cast<unsigned>((i % 4) * 2);
    if (byte >= bits_.size())
        bits_.push_back(0);
    bits_[byte] = static_cast<std::uint8_t>(
        bits_[byte] | (static_cast<std::uint8_t>(s) << shift));
}

PredState
AnnotationStream::at(std::uint64_t i) const
{
    lvp_assert(i < count_, "annotation index %llu out of range",
               static_cast<unsigned long long>(i));
    std::size_t byte = static_cast<std::size_t>(i / 4);
    unsigned shift = static_cast<unsigned>((i % 4) * 2);
    return static_cast<PredState>((bits_[byte] >> shift) & 0x3);
}

void
AnnotationStream::save(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        lvp_fatal("cannot open annotation file '%s'", path.c_str());
    std::uint8_t header[8];
    putU64(header, count_);
    bool ok = std::fwrite(header, sizeof(header), 1, f) == 1;
    ok = ok && (bits_.empty() ||
                std::fwrite(bits_.data(), bits_.size(), 1, f) == 1);
    std::fclose(f);
    if (!ok)
        lvp_fatal("annotation write failed");
}

AnnotationStream
AnnotationStream::load(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        lvp_fatal("cannot open annotation file '%s'", path.c_str());
    std::uint8_t header[8];
    if (std::fread(header, sizeof(header), 1, f) != 1) {
        std::fclose(f);
        lvp_fatal("annotation file '%s' truncated", path.c_str());
    }
    AnnotationStream s;
    s.count_ = getU64(header);
    s.bits_.resize(static_cast<std::size_t>((s.count_ + 3) / 4));
    if (!s.bits_.empty() &&
        std::fread(s.bits_.data(), s.bits_.size(), 1, f) != 1) {
        std::fclose(f);
        lvp_fatal("annotation file '%s' truncated", path.c_str());
    }
    std::fclose(f);
    return s;
}

void
AnnotationRecorder::consume(const TraceRecord &rec)
{
    if (rec.inst->load())
        stream_.append(rec.pred);
}

void
AnnotationMerger::consume(const TraceRecord &rec)
{
    TraceRecord out = rec;
    if (rec.inst->load())
        out.pred = stream_.at(loadIndex_++);
    down_.consume(out);
}

} // namespace lvplib::trace

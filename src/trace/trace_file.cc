#include "trace/trace_file.hh"

#include <algorithm>
#include <array>
#include <cstring>

#include "chaos/chaos.hh"
#include "obs/metrics.hh"
#include "util/logging.hh"

namespace lvplib::trace
{

namespace
{

constexpr std::size_t RecordBytes = TraceRecordBytes;

/**
 * Block-buffer sizing. The reader fills up to ReaderBufRecords per
 * fread; replay() decodes and forwards ReplayBatchRecords per
 * consumeBatch; the writer flushes its encode buffer once it holds
 * WriterBufBytes. Sized so a buffer comfortably exceeds the stdio /
 * page-cache transfer granularity while staying cache-friendly.
 */
constexpr std::size_t ReaderBufRecords = 64 * 1024;
constexpr std::size_t ReplayBatchRecords = 4096;
constexpr std::size_t WriterBufBytes = 1u << 20;

constexpr char HeaderMagic[8] = {'L', 'V', 'P', 'T',
                                 'R', 'A', 'C', 'E'};
constexpr char FooterMagic[8] = {'E', 'C', 'A', 'R',
                                 'T', 'P', 'V', 'L'};

constexpr std::uint64_t FnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t FnvPrime = 0x00000100000001b3ull;

std::uint64_t
fnv1a(const void *data, std::size_t n, std::uint64_t seed)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= FnvPrime;
    }
    return h;
}

void
putU64(std::uint8_t *p, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

void
putU32(std::uint8_t *p, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

/** True when a record's one-byte fields decode to legal values. */
bool
recordBytesValid(const std::uint8_t *rec)
{
    return rec[24] <= 1 && rec[25] < NumPredStates;
}

/** Parsed header + footer of an open trace file. */
struct Envelope
{
    std::uint64_t fingerprint = 0;
    std::uint64_t records = 0;
    std::uint64_t checksum = 0;
};

/**
 * Validate the envelope of @p f and leave the stream positioned at
 * the first payload byte. On failure @p detail explains the specifics.
 */
TraceFileStatus
readEnvelope(std::FILE *f, Envelope &env, std::string &detail)
{
    if (std::fseek(f, 0, SEEK_END) != 0)
        return TraceFileStatus::ReadFailed;
    long size = std::ftell(f);
    if (size < 0)
        return TraceFileStatus::ReadFailed;
    if (static_cast<std::size_t>(size) <
        TraceHeaderBytes + TraceFooterBytes) {
        detail = std::to_string(size) + " bytes, need at least " +
                 std::to_string(TraceHeaderBytes + TraceFooterBytes);
        return TraceFileStatus::TooSmall;
    }

    std::array<std::uint8_t, TraceHeaderBytes> hdr;
    if (std::fseek(f, 0, SEEK_SET) != 0 ||
        std::fread(hdr.data(), hdr.size(), 1, f) != 1)
        return TraceFileStatus::ReadFailed;
    if (std::memcmp(hdr.data(), HeaderMagic, sizeof(HeaderMagic)) != 0)
        return TraceFileStatus::BadMagic;
    std::uint32_t version = getU32(&hdr[8]);
    if (version != TraceFormatVersion) {
        detail = "file version " + std::to_string(version) +
                 ", expected " + std::to_string(TraceFormatVersion);
        return TraceFileStatus::BadVersion;
    }
    std::uint32_t recBytes = getU32(&hdr[12]);
    if (recBytes != RecordBytes) {
        detail = "record size " + std::to_string(recBytes) +
                 ", expected " + std::to_string(RecordBytes);
        return TraceFileStatus::BadRecordSize;
    }
    env.fingerprint = getU64(&hdr[16]);

    std::array<std::uint8_t, TraceFooterBytes> ftr;
    if (std::fseek(f, -static_cast<long>(TraceFooterBytes),
                   SEEK_END) != 0 ||
        std::fread(ftr.data(), ftr.size(), 1, f) != 1)
        return TraceFileStatus::ReadFailed;
    if (std::memcmp(ftr.data(), FooterMagic, sizeof(FooterMagic)) !=
        0) {
        detail = "footer magic missing (interrupted write?)";
        return TraceFileStatus::BadFooter;
    }
    env.records = getU64(&ftr[8]);
    env.checksum = getU64(&ftr[16]);

    std::uint64_t payload = static_cast<std::uint64_t>(size) -
                            TraceHeaderBytes - TraceFooterBytes;
    if (payload % RecordBytes != 0) {
        detail = std::to_string(payload % RecordBytes) +
                 " trailing bytes after " +
                 std::to_string(payload / RecordBytes) +
                 " whole records";
        return TraceFileStatus::PartialRecord;
    }
    if (payload / RecordBytes != env.records) {
        detail = "payload holds " +
                 std::to_string(payload / RecordBytes) +
                 " records, footer promises " +
                 std::to_string(env.records);
        return TraceFileStatus::CountMismatch;
    }

    if (std::fseek(f, static_cast<long>(TraceHeaderBytes),
                   SEEK_SET) != 0)
        return TraceFileStatus::ReadFailed;
    return TraceFileStatus::Ok;
}

} // namespace

std::uint64_t
programFingerprint(const isa::Program &prog)
{
    std::uint64_t h = FnvOffset;
    auto mixU64 = [&h](std::uint64_t v) {
        std::uint8_t b[8];
        putU64(b, v);
        h = fnv1a(b, sizeof(b), h);
    };
    mixU64(prog.size());
    for (const auto &inst : prog.code()) {
        std::uint8_t b[6] = {
            static_cast<std::uint8_t>(inst.op),
            inst.rd,
            inst.rs1,
            inst.rs2,
            static_cast<std::uint8_t>(inst.cond),
            static_cast<std::uint8_t>(inst.dataClass),
        };
        h = fnv1a(b, sizeof(b), h);
        mixU64(static_cast<std::uint64_t>(inst.imm));
    }
    for (const auto &[addr, byte] : prog.dataImage()) {
        mixU64(addr);
        h = fnv1a(&byte, 1, h);
    }
    for (const auto &[name, addr] : prog.symbols()) {
        h = fnv1a(name.data(), name.size(), h);
        mixU64(addr);
    }
    return h;
}

std::uint64_t
mixFingerprint(std::uint64_t fp, const std::string &salt)
{
    return fnv1a(salt.data(), salt.size(), fp);
}

const char *
traceFileStatusName(TraceFileStatus s)
{
    switch (s) {
      case TraceFileStatus::Ok: return "ok";
      case TraceFileStatus::OpenFailed: return "open-failed";
      case TraceFileStatus::TooSmall: return "too-small";
      case TraceFileStatus::BadMagic: return "bad-magic";
      case TraceFileStatus::BadVersion: return "bad-version";
      case TraceFileStatus::BadRecordSize: return "bad-record-size";
      case TraceFileStatus::BadFingerprint: return "stale-fingerprint";
      case TraceFileStatus::BadFooter: return "bad-footer";
      case TraceFileStatus::PartialRecord: return "partial-record";
      case TraceFileStatus::CountMismatch: return "count-mismatch";
      case TraceFileStatus::BadRecord: return "bad-record";
      case TraceFileStatus::ChecksumMismatch:
        return "checksum-mismatch";
      case TraceFileStatus::ReadFailed: return "read-failed";
    }
    return "?";
}

TraceVerifyReport
verifyTraceFile(const std::string &path,
                std::optional<std::uint64_t> expectFingerprint)
{
    TraceVerifyReport rep;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        rep.status = TraceFileStatus::OpenFailed;
        return rep;
    }
    Envelope env;
    rep.status = readEnvelope(f, env, rep.detail);
    rep.fingerprint = env.fingerprint;
    rep.records = env.records;
    if (rep.status != TraceFileStatus::Ok) {
        std::fclose(f);
        return rep;
    }
    if (expectFingerprint && env.fingerprint != *expectFingerprint) {
        rep.status = TraceFileStatus::BadFingerprint;
        rep.detail = "generating program or run key changed";
        std::fclose(f);
        return rep;
    }
    std::uint64_t checksum = FnvOffset;
    std::array<std::uint8_t, RecordBytes> buf;
    for (std::uint64_t i = 0; i < env.records; ++i) {
        if (std::fread(buf.data(), buf.size(), 1, f) != 1) {
            rep.status = TraceFileStatus::ReadFailed;
            rep.detail = "short read at record " + std::to_string(i);
            std::fclose(f);
            return rep;
        }
        if (!recordBytesValid(buf.data())) {
            rep.status = TraceFileStatus::BadRecord;
            rep.detail = "record " + std::to_string(i) +
                         ": taken=" + std::to_string(buf[24]) +
                         " pred=" + std::to_string(buf[25]);
            std::fclose(f);
            return rep;
        }
        checksum = fnv1a(buf.data(), buf.size(), checksum);
    }
    std::fclose(f);
    if (checksum != env.checksum) {
        rep.status = TraceFileStatus::ChecksumMismatch;
        rep.detail = "payload bytes do not match footer checksum";
    }
    return rep;
}

TraceFileWriter::TraceFileWriter(const std::string &path,
                                 std::uint64_t fingerprint)
    : file_(std::fopen(path.c_str(), "wb")), path_(path),
      fingerprint_(fingerprint), checksum_(FnvOffset)
{
    if (!file_) {
        fail("cannot open for writing");
        return;
    }
    wbuf_.reserve(WriterBufBytes + RecordBytes);
    std::array<std::uint8_t, TraceHeaderBytes> hdr;
    std::memcpy(hdr.data(), HeaderMagic, sizeof(HeaderMagic));
    putU32(&hdr[8], TraceFormatVersion);
    putU32(&hdr[12], static_cast<std::uint32_t>(RecordBytes));
    putU64(&hdr[16], fingerprint_);
    if (std::fwrite(hdr.data(), hdr.size(), 1, file_) != 1)
        fail("header write failed");
}

TraceFileWriter::~TraceFileWriter()
{
    if (!closed_ && !close())
        lvp_warn("trace file '%s': %s", path_.c_str(),
                 error_.c_str());
}

void
TraceFileWriter::fail(const std::string &what)
{
    if (!failed_) {
        failed_ = true;
        error_ = what;
    }
}

void
TraceFileWriter::encodeRecord(const TraceRecord &rec)
{
    if (failed_)
        return;
    if (chaos::engine().shouldInject(chaos::Point::TraceWriteRecord,
                                     fingerprint_, written_)) {
        fail("chaos: injected record write failure");
        return;
    }
    std::array<std::uint8_t, RecordBytes> buf;
    putU64(&buf[0], rec.pc);
    // Memory ops use the second slot for their effective address;
    // indirect branches reuse it for their target (the fields are
    // mutually exclusive, keeping the record at 26 bytes).
    bool indirect = rec.inst && isa::isIndirectBranch(rec.inst->op);
    putU64(&buf[8], indirect ? rec.nextPc : rec.effAddr);
    putU64(&buf[16], rec.value);
    buf[24] = rec.taken ? 1 : 0;
    buf[25] = static_cast<std::uint8_t>(rec.pred);
    wbuf_.insert(wbuf_.end(), buf.begin(), buf.end());
    checksum_ = fnv1a(buf.data(), buf.size(), checksum_);
    ++written_;
    if (wbuf_.size() >= WriterBufBytes)
        flushBuffer();
}

void
TraceFileWriter::flushBuffer()
{
    if (wbuf_.empty())
        return;
    // A latched failure discards the whole file; dropping the
    // buffered bytes just gets there faster.
    if (!failed_ &&
        std::fwrite(wbuf_.data(), 1, wbuf_.size(), file_) !=
            wbuf_.size())
        fail("record write failed (disk full?)");
    wbuf_.clear();
}

void
TraceFileWriter::consume(const TraceRecord &rec)
{
    encodeRecord(rec);
}

void
TraceFileWriter::consumeBatch(std::span<const TraceRecord> recs)
{
    for (const TraceRecord &rec : recs)
        encodeRecord(rec);
}

void
TraceFileWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    if (failed_)
        return;
    flushBuffer();
    if (failed_)
        return;
    if (chaos::engine().shouldInject(chaos::Point::TraceWriteFooter,
                                     fingerprint_, 0)) {
        fail("chaos: injected footer write failure");
        return;
    }
    std::array<std::uint8_t, TraceFooterBytes> ftr;
    std::memcpy(ftr.data(), FooterMagic, sizeof(FooterMagic));
    putU64(&ftr[8], written_);
    putU64(&ftr[16], checksum_);
    if (std::fwrite(ftr.data(), ftr.size(), 1, file_) != 1) {
        fail("footer write failed (disk full?)");
        return;
    }
    if (std::fflush(file_) != 0)
        fail("flush failed (disk full?)");
}

bool
TraceFileWriter::close()
{
    if (closed_)
        return !failed_;
    closed_ = true;
    finish();
    if (file_) {
        if (std::fclose(file_) != 0)
            fail("close failed (disk full?)");
        file_ = nullptr;
    }
    return !failed_;
}

TraceFileReader::TraceFileReader(
    const std::string &path, const isa::Program &prog,
    std::optional<std::uint64_t> expectFingerprint)
    : file_(std::fopen(path.c_str(), "rb")), prog_(prog), path_(path),
      checksum_(FnvOffset)
{
    if (!file_)
        throw SimError(ErrorKind::TraceIo,
                       detail::formatMsg(
                           "cannot open trace file '%s' for reading",
                           path.c_str()));
    Envelope env;
    std::string detailStr;
    TraceFileStatus st = readEnvelope(file_, env, detailStr);
    if (st != TraceFileStatus::Ok) {
        // The destructor will not run when the constructor throws:
        // close the stream here.
        std::fclose(file_);
        file_ = nullptr;
        throw SimError(ErrorKind::TraceCorrupt,
                       detail::formatMsg(
                           "invalid trace file '%s': %s%s%s",
                           path.c_str(), traceFileStatusName(st),
                           detailStr.empty() ? "" : ": ",
                           detailStr.c_str()));
    }
    if (expectFingerprint && env.fingerprint != *expectFingerprint) {
        std::fclose(file_);
        file_ = nullptr;
        throw SimError(
            ErrorKind::TraceCorrupt,
            detail::formatMsg(
                "invalid trace file '%s': %s (have %016llx, "
                "expected %016llx)",
                path.c_str(),
                traceFileStatusName(TraceFileStatus::BadFingerprint),
                static_cast<unsigned long long>(env.fingerprint),
                static_cast<unsigned long long>(*expectFingerprint)));
    }
    records_ = env.records;
    end_ = records_;
    fingerprint_ = env.fingerprint;
    expectChecksum_ = env.checksum;
    iobuf_.resize(static_cast<std::size_t>(std::min<std::uint64_t>(
                      records_, ReaderBufRecords)) *
                  RecordBytes);
}

TraceFileReader::TraceFileReader(
    const std::string &path, const isa::Program &prog,
    std::optional<std::uint64_t> expectFingerprint,
    const Window &window)
    : TraceFileReader(path, prog, expectFingerprint)
{
    if (window.first > records_ ||
        window.count > records_ - window.first) {
        std::fclose(file_);
        file_ = nullptr;
        throw SimError(
            ErrorKind::TraceCorrupt,
            detail::formatMsg(
                "invalid trace window [%llu, +%llu) for '%s': file "
                "has %llu records",
                static_cast<unsigned long long>(window.first),
                static_cast<unsigned long long>(window.count),
                path.c_str(),
                static_cast<unsigned long long>(records_)));
    }
    if (std::fseek(file_,
                   static_cast<long>(TraceHeaderBytes +
                                     window.first * RecordBytes),
                   SEEK_SET) != 0) {
        std::fclose(file_);
        file_ = nullptr;
        throw SimError(ErrorKind::TraceIo,
                       detail::formatMsg(
                           "cannot seek to record %llu in '%s'",
                           static_cast<unsigned long long>(
                               window.first),
                           path.c_str()));
    }
    seq_ = window.first;
    end_ = window.first + window.count;
    // The whole-payload checksum cannot be verified from a window;
    // callers guarantee the file was verified beforehand.
    verifyChecksum_ = false;
    bufPos_ = 0;
    bufLen_ = 0;
    iobuf_.resize(static_cast<std::size_t>(std::min<std::uint64_t>(
                      window.count, ReaderBufRecords)) *
                  RecordBytes);
}

TraceFileReader::~TraceFileReader()
{
    if (file_)
        std::fclose(file_);
}

void
TraceFileReader::fillBuffer()
{
    std::uint64_t want = std::min<std::uint64_t>(
        end_ - seq_, ReaderBufRecords);
    std::size_t got = std::fread(
        iobuf_.data(), 1,
        static_cast<std::size_t>(want) * RecordBytes, file_);
    // The envelope fixed the file size at open, so a short fill
    // means the file shrank underneath us. Hand back any whole
    // records we did get; the next fill throws at the first record
    // we cannot deliver. Re-align the stream past a partial tail so
    // the failing position is reported exactly once.
    if (std::size_t tail = got % RecordBytes; tail != 0)
        std::fseek(file_, -static_cast<long>(tail), SEEK_CUR);
    std::size_t whole = got / RecordBytes;
    if (whole == 0)
        throw SimError(
            ErrorKind::TraceCorrupt,
            detail::formatMsg(
                "invalid trace file '%s': truncated at record "
                "%llu of %llu",
                path_.c_str(), static_cast<unsigned long long>(seq_),
                static_cast<unsigned long long>(records_)));
    bufPos_ = 0;
    bufLen_ = whole * RecordBytes;
}

bool
TraceFileReader::next(TraceRecord &rec)
{
    if (seq_ == end_) {
        if (verifyChecksum_ && checksum_ != expectChecksum_)
            throw SimError(
                ErrorKind::TraceCorrupt,
                detail::formatMsg(
                    "invalid trace file '%s': %s", path_.c_str(),
                    traceFileStatusName(
                        TraceFileStatus::ChecksumMismatch)));
        return false;
    }
    if (bufPos_ == bufLen_)
        fillBuffer();
    std::uint8_t *buf = iobuf_.data() + bufPos_;
    bufPos_ += RecordBytes;
    if (chaos::engine().enabled() &&
        chaos::engine().shouldInject(chaos::Point::TraceReadFlip,
                                     fingerprint_, seq_)) {
        // Flip one bit of the record as read; the flip is caught by
        // record validation or by the end-of-trace checksum, never
        // silently accepted.
        std::uint64_t h = chaos::engine().faultHash(
            chaos::Point::TraceReadFlip, fingerprint_, seq_);
        buf[h % RecordBytes] ^=
            static_cast<std::uint8_t>(1u << ((h >> 8) % 8));
    }
    if (!recordBytesValid(buf))
        throw SimError(
            ErrorKind::TraceCorrupt,
            detail::formatMsg(
                "invalid trace file '%s': %s at record %llu "
                "(taken=%u pred=%u)",
                path_.c_str(),
                traceFileStatusName(TraceFileStatus::BadRecord),
                static_cast<unsigned long long>(seq_), buf[24],
                buf[25]));
    checksum_ = fnv1a(buf, RecordBytes, checksum_);
    rec.seq = seq_++;
    rec.pc = getU64(&buf[0]);
    rec.effAddr = getU64(&buf[8]);
    rec.value = getU64(&buf[16]);
    rec.taken = buf[24] != 0;
    rec.pred = static_cast<PredState>(buf[25]);
    if (!prog_.validPc(rec.pc))
        throw SimError(
            ErrorKind::TraceCorrupt,
            detail::formatMsg(
                "invalid trace file '%s': record %llu names pc "
                "0x%llx outside the program",
                path_.c_str(),
                static_cast<unsigned long long>(rec.seq),
                static_cast<unsigned long long>(rec.pc)));
    rec.inst = &prog_.fetch(rec.pc);
    // Reconstruct the architectural successor.
    if (rec.inst->op == isa::Opcode::HALT) {
        rec.nextPc = rec.pc;
    } else if (rec.inst->branch() && rec.taken) {
        if (isa::isIndirectBranch(rec.inst->op)) {
            // Indirect targets are not stored; they are only needed
            // by the branch predictor, which reads nextPc. Recover
            // it from the value field convention below.
            rec.nextPc = rec.effAddr;
        } else {
            rec.nextPc = static_cast<Addr>(rec.inst->imm);
        }
    } else {
        rec.nextPc = rec.pc + isa::layout::InstBytes;
    }
    return true;
}

std::uint64_t
TraceFileReader::replay(TraceSink &sink)
{
    obs::Counter &batches =
        obs::metrics().counter("trace.replay.batches");
    obs::Counter &batchRecords =
        obs::metrics().counter("trace.replay.batch_records");
    // At least one slot so an empty trace still runs the
    // end-of-trace checksum verification in next().
    std::vector<TraceRecord> batch(static_cast<std::size_t>(
        std::max<std::uint64_t>(
            1, std::min<std::uint64_t>(end_ - seq_,
                                       ReplayBatchRecords))));
    std::uint64_t n = 0;
    for (;;) {
        std::size_t k = 0;
        while (k < batch.size() && next(batch[k]))
            ++k;
        if (k == 0)
            break;
        sink.consumeBatch(std::span<const TraceRecord>(
            batch.data(), k));
        batches.add();
        batchRecords.add(k);
        n += k;
        if (k < batch.size())
            break;
    }
    sink.finish();
    return n;
}

void
AnnotationStream::append(PredState s)
{
    std::uint64_t i = count_++;
    std::size_t byte = static_cast<std::size_t>(i / 4);
    unsigned shift = static_cast<unsigned>((i % 4) * 2);
    if (byte >= bits_.size())
        bits_.push_back(0);
    bits_[byte] = static_cast<std::uint8_t>(
        bits_[byte] | (static_cast<std::uint8_t>(s) << shift));
}

PredState
AnnotationStream::at(std::uint64_t i) const
{
    lvp_assert(i < count_, "annotation index %llu out of range",
               static_cast<unsigned long long>(i));
    std::size_t byte = static_cast<std::size_t>(i / 4);
    unsigned shift = static_cast<unsigned>((i % 4) * 2);
    return static_cast<PredState>((bits_[byte] >> shift) & 0x3);
}

void
AnnotationStream::save(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        throw SimError(ErrorKind::TraceIo,
                       detail::formatMsg(
                           "cannot open annotation file '%s'",
                           path.c_str()));
    std::uint8_t header[8];
    putU64(header, count_);
    bool ok = std::fwrite(header, sizeof(header), 1, f) == 1;
    ok = ok && (bits_.empty() ||
                std::fwrite(bits_.data(), bits_.size(), 1, f) == 1);
    ok = std::fclose(f) == 0 && ok;
    if (!ok)
        throw SimError(ErrorKind::TraceIo,
                       detail::formatMsg(
                           "annotation file '%s': write failed",
                           path.c_str()));
}

AnnotationStream
AnnotationStream::load(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw SimError(ErrorKind::TraceIo,
                       detail::formatMsg(
                           "cannot open annotation file '%s'",
                           path.c_str()));
    std::uint8_t header[8];
    if (std::fread(header, sizeof(header), 1, f) != 1) {
        std::fclose(f);
        throw SimError(ErrorKind::TraceIo,
                       detail::formatMsg(
                           "annotation file '%s' truncated",
                           path.c_str()));
    }
    AnnotationStream s;
    s.count_ = getU64(header);
    s.bits_.resize(static_cast<std::size_t>((s.count_ + 3) / 4));
    if (!s.bits_.empty() &&
        std::fread(s.bits_.data(), s.bits_.size(), 1, f) != 1) {
        std::fclose(f);
        throw SimError(ErrorKind::TraceIo,
                       detail::formatMsg(
                           "annotation file '%s' truncated",
                           path.c_str()));
    }
    std::fclose(f);
    return s;
}

void
AnnotationRecorder::consume(const TraceRecord &rec)
{
    if (rec.inst->load())
        stream_.append(rec.pred);
}

void
AnnotationRecorder::consumeBatch(std::span<const TraceRecord> recs)
{
    for (const TraceRecord &rec : recs)
        if (rec.inst->load())
            stream_.append(rec.pred);
}

void
AnnotationMerger::consume(const TraceRecord &rec)
{
    TraceRecord out = rec;
    if (rec.inst->load())
        out.pred = stream_.at(loadIndex_++);
    down_.consume(out);
}

void
AnnotationMerger::consumeBatch(std::span<const TraceRecord> recs)
{
    batch_.assign(recs.begin(), recs.end());
    for (TraceRecord &out : batch_)
        if (out.inst->load())
            out.pred = stream_.at(loadIndex_++);
    down_.consumeBatch(
        std::span<const TraceRecord>(batch_.data(), batch_.size()));
}

} // namespace lvplib::trace

/**
 * @file
 * Trace-cache directory maintenance: enumerate a shared trace
 * directory, verify every *.trace file, and (optionally) prune the
 * invalid ones plus orphaned *.trace.tmp.<pid>.<seq> files.
 *
 * Temp files need care: trace directories are shared by concurrent
 * lvpbench processes, and a temp file may belong to a live writer
 * that has not yet renamed it into place. Pruning is therefore
 * age-gated — only temps older than tempPruneAgeSeconds (far longer
 * than any write takes) are treated as abandoned by a crashed writer;
 * younger ones are reported but left alone.
 */

#ifndef LVPLIB_TRACE_TRACE_DIR_HH
#define LVPLIB_TRACE_TRACE_DIR_HH

#include <cstddef>
#include <string>
#include <vector>

#include "trace/trace_file.hh"

namespace lvplib::trace
{

/** Age a *.trace.tmp.* file must reach before pruning treats it as
 *  abandoned rather than a possible live concurrent writer. */
constexpr double TempPruneAgeSeconds = 15 * 60;

/** One file found by scanTraceDir(). */
struct TraceDirEntry
{
    std::string path;        ///< full path
    std::string name;        ///< file name only
    bool isTemp = false;     ///< *.trace.tmp.<pid>.<seq>
    bool pruned = false;     ///< deleted by this scan
    bool migrated = false;   ///< rewritten v2 -> v3 by this scan
    TraceVerifyReport report; ///< integrity (traces only)
    double ageSeconds = 0;   ///< since last modification (temps only)
};

/** Everything scanTraceDir() found, name-sorted per category. */
struct TraceDirScan
{
    std::vector<TraceDirEntry> traces;
    std::vector<TraceDirEntry> temps;
    std::size_t invalid = 0;       ///< traces failing verification
    std::size_t prunedCount = 0;   ///< files deleted
    std::size_t migratedCount = 0; ///< traces rewritten v2 -> v3
    bool ok = false;               ///< directory was readable
    std::string error;             ///< why not, when !ok
};

/**
 * Scan @p dir, verifying every trace file. With @p prune, delete
 * invalid traces and temp files older than @p tempPruneAgeSeconds.
 * With @p migrate, additionally rewrite every valid legacy-version
 * trace as the current format (atomic temp + rename; see
 * migrateTraceFile) — each entry's report reflects the file as left
 * on disk. A failed migration keeps the valid v2 original and is not
 * counted invalid.
 */
TraceDirScan scanTraceDir(const std::string &dir, bool prune,
                          bool migrate = false,
                          double tempPruneAgeSeconds =
                              TempPruneAgeSeconds);

} // namespace lvplib::trace

#endif // LVPLIB_TRACE_TRACE_DIR_HH

/**
 * @file
 * Column codecs shared by the v3 trace file format
 * (trace/trace_file.hh) and the lvp-serve hot-trace cache
 * (serve/protocol.hh): the paper's value-locality observation applied
 * to our own storage layer. Dynamic pc / effective-address / value
 * columns vary slowly, so delta + zigzag + LEB128 varint shrinks them
 * from 8 bytes to ~1 byte per record, and the mostly-zero columns
 * (addresses of non-memory records, values of non-loads) collapse
 * further behind a one-bit presence bitmap.
 *
 * Encoders are infallible; decoders are strict and total: every read
 * is bounds-checked against the payload, a varint longer than
 * VarintMaxBytes or overflowing 64 bits is rejected, and a column
 * that does not consume exactly its declared byte length fails.
 * Failure is a `false` return — callers (which know the file/stream
 * context) turn it into a typed SimError(TraceCorrupt).
 */

#ifndef LVPLIB_TRACE_COLUMNAR_HH
#define LVPLIB_TRACE_COLUMNAR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lvplib::trace
{

/** @{ FNV-1a, the checksum/fingerprint hash used across the trace
 *  layer (also exposed here for per-block checksums). */
constexpr std::uint64_t FnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t FnvPrime = 0x00000100000001b3ull;

std::uint64_t fnv1a(const void *data, std::size_t n,
                    std::uint64_t seed = FnvOffset);
/** @} */

/** Longest legal LEB128 encoding of a u64 (10 * 7 bits >= 64). */
constexpr std::size_t VarintMaxBytes = 10;

/** Append the LEB128 varint encoding of @p v to @p out. */
void putVarint(std::vector<std::uint8_t> &out, std::uint64_t v);

/**
 * Decode one LEB128 varint from [@p p, @p end), advancing @p p.
 * @return false on truncation, an encoding longer than
 * VarintMaxBytes, or 64-bit overflow in the final byte.
 */
bool getVarint(const std::uint8_t *&p, const std::uint8_t *end,
               std::uint64_t &v);

/** @{ Zigzag: map small-magnitude signed deltas to small varints. */
constexpr std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}
/** @} */

/**
 * Dense delta column: each value is encoded as the zigzagged
 * difference from its predecessor (the first from 0). Used for pc,
 * whose deltas are one instruction-size stride for straight-line
 * code.
 */
void encodeDeltaColumn(const std::uint64_t *vals, std::size_t n,
                       std::vector<std::uint8_t> &out);

/**
 * Decode @p n values of a dense delta column occupying exactly
 * [@p p, @p p + @p len). Writes into @p out[0..n) with stride
 * @p stride u64 slots (stride > 1 scatters straight into an
 * array-of-structs field, the zero-recopy replay path).
 */
bool decodeDeltaColumn(const std::uint8_t *p, std::size_t len,
                       std::uint64_t *out, std::size_t n,
                       std::size_t stride = 1);

/**
 * Sparse column: a presence bitmap of (n+7)/8 bytes (bit i set when
 * vals[i] != 0), then one zigzagged delta varint per nonzero value,
 * each relative to the PREVIOUS NONZERO value (first from 0). Zeros
 * cost one bit; nonzero runs exploit the paper's address/value
 * locality. Used for effAddr and value, which are zero for most
 * non-memory records.
 */
void encodeSparseColumn(const std::uint64_t *vals, std::size_t n,
                        std::vector<std::uint8_t> &out);

/** Decode a sparse column (see encodeSparseColumn); exact-length and
 *  stride semantics as decodeDeltaColumn. */
bool decodeSparseColumn(const std::uint8_t *p, std::size_t len,
                        std::uint64_t *out, std::size_t n,
                        std::size_t stride = 1);

/** Pack n one-bit flags (vals[i] != 0) into (n+7)/8 bytes. */
void packBits(const std::uint8_t *vals, std::size_t n,
              std::vector<std::uint8_t> &out);

/** Bit i of a packBits() column. */
inline bool
unpackBit(const std::uint8_t *p, std::size_t i)
{
    return (p[i >> 3] >> (i & 7)) & 1;
}

/** Pack n two-bit codes (vals[i] & 3) into (n+3)/4 bytes. */
void packCrumbs(const std::uint8_t *vals, std::size_t n,
                std::vector<std::uint8_t> &out);

/** Two-bit code i of a packCrumbs() column. */
inline std::uint8_t
unpackCrumb(const std::uint8_t *p, std::size_t i)
{
    return (p[i >> 2] >> ((i & 3) * 2)) & 3;
}

} // namespace lvplib::trace

#endif // LVPLIB_TRACE_COLUMNAR_HH

#include "trace/columnar.hh"

namespace lvplib::trace
{

std::uint64_t
fnv1a(const void *data, std::size_t n, std::uint64_t seed)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= FnvPrime;
    }
    return h;
}

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

bool
getVarint(const std::uint8_t *&p, const std::uint8_t *end,
          std::uint64_t &v)
{
    std::uint64_t acc = 0;
    unsigned shift = 0;
    for (std::size_t i = 0; i < VarintMaxBytes; ++i) {
        if (p == end)
            return false; // truncated
        std::uint8_t byte = *p++;
        // The 10th byte may only contribute the top bit of a u64:
        // anything else is a 64-bit overflow from hostile input.
        if (i == VarintMaxBytes - 1 && byte > 1)
            return false;
        acc |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80)) {
            v = acc;
            return true;
        }
        shift += 7;
    }
    return false; // longer than any canonical u64 encoding
}

void
encodeDeltaColumn(const std::uint64_t *vals, std::size_t n,
                  std::vector<std::uint8_t> &out)
{
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
        // Wrapping subtraction keeps the transform lossless for any
        // 64-bit pattern; zigzag keeps +/- strides equally short.
        putVarint(out,
                  zigzagEncode(
                      static_cast<std::int64_t>(vals[i] - prev)));
        prev = vals[i];
    }
}

bool
decodeDeltaColumn(const std::uint8_t *p, std::size_t len,
                  std::uint64_t *out, std::size_t n,
                  std::size_t stride)
{
    const std::uint8_t *end = p + len;
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t z;
        if (!getVarint(p, end, z))
            return false;
        prev += static_cast<std::uint64_t>(zigzagDecode(z));
        out[i * stride] = prev;
    }
    return p == end; // a column must consume exactly its bytes
}

void
encodeSparseColumn(const std::uint64_t *vals, std::size_t n,
                   std::vector<std::uint8_t> &out)
{
    std::size_t bitmapAt = out.size();
    out.resize(bitmapAt + (n + 7) / 8, 0);
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (vals[i] == 0)
            continue;
        out[bitmapAt + (i >> 3)] |=
            static_cast<std::uint8_t>(1u << (i & 7));
        putVarint(out,
                  zigzagEncode(
                      static_cast<std::int64_t>(vals[i] - prev)));
        prev = vals[i];
    }
}

bool
decodeSparseColumn(const std::uint8_t *p, std::size_t len,
                   std::uint64_t *out, std::size_t n,
                   std::size_t stride)
{
    std::size_t bitmapBytes = (n + 7) / 8;
    if (len < bitmapBytes)
        return false;
    const std::uint8_t *bitmap = p;
    const std::uint8_t *cur = p + bitmapBytes;
    const std::uint8_t *end = p + len;
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (!unpackBit(bitmap, i)) {
            out[i * stride] = 0;
            continue;
        }
        std::uint64_t z;
        if (!getVarint(cur, end, z))
            return false;
        prev += static_cast<std::uint64_t>(zigzagDecode(z));
        // A "present" zero is an encoding our writer never produces
        // (zeros go in the bitmap); reject rather than round-trip
        // ambiguously.
        if (prev == 0)
            return false;
        out[i * stride] = prev;
    }
    return cur == end;
}

void
packBits(const std::uint8_t *vals, std::size_t n,
         std::vector<std::uint8_t> &out)
{
    std::size_t at = out.size();
    out.resize(at + (n + 7) / 8, 0);
    for (std::size_t i = 0; i < n; ++i)
        if (vals[i])
            out[at + (i >> 3)] |=
                static_cast<std::uint8_t>(1u << (i & 7));
}

void
packCrumbs(const std::uint8_t *vals, std::size_t n,
           std::vector<std::uint8_t> &out)
{
    std::size_t at = out.size();
    out.resize(at + (n + 3) / 4, 0);
    for (std::size_t i = 0; i < n; ++i)
        out[at + (i >> 2)] |= static_cast<std::uint8_t>(
            (vals[i] & 3) << ((i & 3) * 2));
}

} // namespace lvplib::trace

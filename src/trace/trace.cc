#include "trace/trace.hh"

namespace lvplib::trace
{

const char *
predStateName(PredState s)
{
    switch (s) {
      case PredState::None: return "none";
      case PredState::Incorrect: return "incorrect";
      case PredState::Correct: return "correct";
      case PredState::Constant: return "constant";
    }
    return "?";
}

} // namespace lvplib::trace

#include "trace/trace_dir.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <system_error>

namespace lvplib::trace
{

namespace fs = std::filesystem;

namespace
{

double
fileAgeSeconds(const fs::path &p)
{
    std::error_code ec;
    auto mtime = fs::last_write_time(p, ec);
    if (ec)
        return 0;
    auto age = fs::file_time_type::clock::now() - mtime;
    return std::chrono::duration<double>(age).count();
}

} // namespace

TraceDirScan
scanTraceDir(const std::string &dir, bool prune, bool migrate,
             double tempPruneAgeSeconds)
{
    TraceDirScan scan;
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) {
        scan.error = ec.message();
        return scan;
    }
    scan.ok = true;
    for (const auto &ent : it) {
        if (!ent.is_regular_file(ec))
            continue;
        TraceDirEntry e;
        e.path = ent.path().string();
        e.name = ent.path().filename().string();
        if (e.name.size() > 6 &&
            e.name.compare(e.name.size() - 6, 6, ".trace") == 0) {
            scan.traces.push_back(std::move(e));
        } else if (e.name.find(".trace.tmp.") != std::string::npos) {
            e.isTemp = true;
            e.ageSeconds = fileAgeSeconds(ent.path());
            scan.temps.push_back(std::move(e));
        }
    }
    auto byName = [](const TraceDirEntry &a, const TraceDirEntry &b) {
        return a.name < b.name;
    };
    std::sort(scan.traces.begin(), scan.traces.end(), byName);
    std::sort(scan.temps.begin(), scan.temps.end(), byName);

    for (auto &e : scan.traces) {
        e.report = verifyTraceFile(e.path);
        if (e.report.ok()) {
            if (migrate &&
                e.report.version != TraceFormatVersion) {
                auto after = migrateTraceFile(e.path);
                if (after.ok()) {
                    e.report = after;
                    e.migrated = true;
                    ++scan.migratedCount;
                }
                // On failure the valid original is still in place;
                // keep its report and move on.
            }
            continue;
        }
        ++scan.invalid;
        if (prune) {
            fs::remove(e.path, ec);
            e.pruned = true;
            ++scan.prunedCount;
        }
    }
    for (auto &e : scan.temps) {
        if (prune && e.ageSeconds > tempPruneAgeSeconds) {
            fs::remove(e.path, ec);
            e.pruned = true;
            ++scan.prunedCount;
        }
    }
    return scan;
}

} // namespace lvplib::trace

/**
 * @file
 * Binary trace serialization, mirroring the paper's decoupled
 * experimental flow (Section 5): phase 1 writes a full dynamic trace
 * to disk; phase 2 runs the LVP unit over it and emits a compact
 * annotation stream of TWO BITS PER LOAD ("to conserve trace
 * bandwidth by passing only two bits of state per load to the
 * microarchitectural simulator"); phase 3 replays the trace merged
 * with the annotations into a timing model.
 *
 * On-disk layout (little-endian throughout):
 *
 *   header (24 bytes)
 *     [ 0.. 8)  magic "LVPTRACE"
 *     [ 8..12)  u32 format version (TraceFormatVersion)
 *     [12..16)  u32 record size in bytes (TraceRecordBytes)
 *     [16..24)  u64 fingerprint of the generating program + run key
 *   payload: N fixed-size records
 *     u64 pc | u64 effAddr | u64 value | u8 taken | u8 pred
 *   footer (24 bytes)
 *     [ 0.. 8)  magic "ECARTPVL"
 *     [ 8..16)  u64 record count N
 *     [16..24)  u64 FNV-1a checksum over all payload bytes
 *
 * nextPc and the static instruction are reconstructed from the
 * Program at read time; seq is implicit in record order.
 *
 * The fingerprint (programFingerprint() mixed with a caller-chosen
 * salt, e.g. workload|codegen|scale|maxInstructions) ties a trace to
 * the exact program it was generated from: a cache that stores traces
 * can detect stale files after a workload-builder or codegen change
 * without any out-of-band bookkeeping. Bump TraceFormatVersion when
 * the record encoding or the interpreter's observable semantics
 * change; readers reject other versions.
 *
 * verifyTraceFile() is the non-fatal integrity check (used by the
 * run-cache and by `lvpbench --verify-trace-cache`): it validates the
 * envelope, every record's enum bytes, and the checksum, and reports
 * a TraceFileStatus instead of exiting. TraceFileReader is strict: it
 * is for files that are expected to be valid and throws
 * SimError(TraceCorrupt) — or SimError(TraceIo) for an unopenable
 * file — on corruption, naming the reason (never silently truncating
 * a replay). The run-cache catches the exception and falls back to
 * in-memory interpretation.
 */

#ifndef LVPLIB_TRACE_TRACE_FILE_HH
#define LVPLIB_TRACE_TRACE_FILE_HH

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "trace/trace.hh"

namespace lvplib::trace
{

/** Bump when the record encoding or interpreter semantics change. */
constexpr std::uint32_t TraceFormatVersion = 2;

/** Fixed encoded record size: u64 pc|effAddr|value + u8 taken|pred. */
constexpr std::size_t TraceRecordBytes = 8 + 8 + 8 + 1 + 1;

/** Encoded header / footer sizes (see file comment for layout). */
constexpr std::size_t TraceHeaderBytes = 8 + 4 + 4 + 8;
constexpr std::size_t TraceFooterBytes = 8 + 8 + 8;

/**
 * Stable fingerprint of a program image (instructions, data image,
 * symbols). Two programs that could produce different traces hash
 * differently; rebuilding the same workload hashes identically.
 */
std::uint64_t programFingerprint(const isa::Program &prog);

/** Fold @p salt (e.g. a run-cache key) into fingerprint @p fp. */
std::uint64_t mixFingerprint(std::uint64_t fp, const std::string &salt);

/** Why a trace file failed (or passed) verification. */
enum class TraceFileStatus
{
    Ok,
    OpenFailed,       ///< cannot open for reading
    TooSmall,         ///< shorter than header + footer
    BadMagic,         ///< header magic mismatch (not a trace file)
    BadVersion,       ///< written by a different format version
    BadRecordSize,    ///< record size field disagrees with ours
    BadFingerprint,   ///< stale: generating program/run key changed
    BadFooter,        ///< footer magic missing (interrupted write)
    PartialRecord,    ///< payload has 1..25 trailing bytes
    CountMismatch,    ///< footer count disagrees with payload size
    BadRecord,        ///< out-of-range taken/pred byte in a record
    ChecksumMismatch, ///< payload bytes corrupted
    ReadFailed,       ///< I/O error while scanning
};

const char *traceFileStatusName(TraceFileStatus s);

/** Result of verifyTraceFile(). */
struct TraceVerifyReport
{
    TraceFileStatus status = TraceFileStatus::Ok;
    std::uint64_t records = 0;     ///< footer count (when readable)
    std::uint64_t fingerprint = 0; ///< header fingerprint (when readable)
    std::string detail;            ///< human-readable specifics

    bool ok() const { return status == TraceFileStatus::Ok; }
};

/**
 * Fully verify @p path: envelope, per-record enum bytes, checksum,
 * and (when given) the expected fingerprint. Never fatal; a missing
 * or corrupt file is reported in the returned status.
 */
TraceVerifyReport
verifyTraceFile(const std::string &path,
                std::optional<std::uint64_t> expectFingerprint =
                    std::nullopt);

/**
 * A sink that streams records into a binary trace file.
 *
 * Records are encoded into a block buffer and written with one
 * fwrite per buffer-full rather than one per record; a latched write
 * failure still poisons the whole file, so buffering does not change
 * what callers can observe (a file is either complete and verified
 * or discarded).
 *
 * I/O errors (open, write, flush, close) are latched instead of
 * fatal: good() turns false, further records are dropped, and close()
 * reports overall success so callers can discard the file and fall
 * back rather than publish a truncated trace. A file is only valid
 * once finish() has written the footer and close() returned true.
 */
class TraceFileWriter : public TraceSink
{
  public:
    /** Open @p path for writing; failure is latched, not fatal. */
    explicit TraceFileWriter(const std::string &path,
                             std::uint64_t fingerprint = 0);
    ~TraceFileWriter() override;

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    void consume(const TraceRecord &rec) override;
    void consumeBatch(std::span<const TraceRecord> recs) override;

    /** Write the footer and flush (idempotent). */
    void finish() override;

    /**
     * finish() if needed, then fclose.
     * @return true when every write (records, footer, flush, close)
     * succeeded; on false the file must not be used.
     */
    bool close();

    /** False once any I/O error has occurred. */
    bool good() const { return !failed_; }

    /** First I/O error message ("" when good()). */
    const std::string &error() const { return error_; }

    std::uint64_t recordsWritten() const { return written_; }

  private:
    void fail(const std::string &what);
    void encodeRecord(const TraceRecord &rec);
    void flushBuffer();

    std::FILE *file_;
    std::string path_;
    std::uint64_t fingerprint_;
    std::uint64_t checksum_;
    std::uint64_t written_ = 0;
    bool finished_ = false;
    bool closed_ = false;
    bool failed_ = false;
    std::string error_;
    std::vector<std::uint8_t> wbuf_; ///< encoded-record block buffer
};

/**
 * Replays a binary trace file into a sink, re-binding each record to
 * its static instruction in @p prog. The program must be the one the
 * trace was generated from (pass @p expectFingerprint to enforce it).
 *
 * The reader is strict: a malformed envelope, a truncated payload, an
 * out-of-range record byte or pc, or a checksum mismatch throws
 * SimError(TraceCorrupt) with a diagnostic — corruption is never
 * reported as a clean end-of-trace. An unopenable file throws
 * SimError(TraceIo). Callers that must survive corrupt files catch
 * SimError and discard the partial replay (the run-cache falls back
 * to in-memory interpretation and deletes the file).
 *
 * I/O is block-buffered: the reader fills a multi-record buffer with
 * one fread and decodes records out of it, so next() never touches
 * the FILE* on the hot path. replay() additionally batches decoded
 * records and hands them to TraceSink::consumeBatch(), keeping one
 * virtual call per batch instead of per record. Validation is
 * unchanged and strictly in record order: chaos read-flip, enum-byte
 * check, checksum accumulation, pc validation — a corrupt record
 * throws before any later record is observed by the sink.
 */
class TraceFileReader
{
  public:
    /**
     * A half-open record window [first, first + count) of a trace
     * file, for sharded replay. A windowed reader seeks straight to
     * record `first`, delivers exactly `count` records with their
     * absolute sequence numbers, then reports end-of-trace WITHOUT
     * the whole-payload checksum comparison (the checksum covers all
     * payload bytes, which a window by definition does not read).
     * Use only on files already verified end to end — the run cache
     * verifies before replaying, and the sharded engine's leader pass
     * reads the full file first. Per-record validation (chaos
     * read-flip keyed by absolute record number, enum bytes, pc)
     * is identical to a full read.
     */
    struct Window
    {
        std::uint64_t first = 0;
        std::uint64_t count = 0;
    };

    TraceFileReader(const std::string &path, const isa::Program &prog,
                    std::optional<std::uint64_t> expectFingerprint =
                        std::nullopt);

    /** Open a windowed reader (see Window). Throws TraceCorrupt when
     *  the window exceeds the footer's record count. */
    TraceFileReader(const std::string &path, const isa::Program &prog,
                    std::optional<std::uint64_t> expectFingerprint,
                    const Window &window);

    ~TraceFileReader();

    TraceFileReader(const TraceFileReader &) = delete;
    TraceFileReader &operator=(const TraceFileReader &) = delete;

    /**
     * Read one record into @p rec.
     * @return false at the end of the trace (checksum-verified for a
     * full reader; windowed readers skip the whole-payload check).
     */
    bool next(TraceRecord &rec);

    /** Stream the whole file (or window) into @p sink (calls
     *  finish()). */
    std::uint64_t replay(TraceSink &sink);

    /** Total records promised by the footer. */
    std::uint64_t records() const { return records_; }

    /** Fingerprint stored in the header. */
    std::uint64_t fingerprint() const { return fingerprint_; }

  private:
    /** Refill iobuf_; throws TraceCorrupt when no whole record is
     *  available (the file shrank after the envelope was checked). */
    void fillBuffer();

    std::FILE *file_;
    const isa::Program &prog_;
    std::string path_;
    SeqNum seq_ = 0;
    std::uint64_t records_ = 0;
    std::uint64_t end_ = 0;       ///< one past the last record to read
    bool verifyChecksum_ = true;  ///< false for windowed readers
    std::uint64_t fingerprint_ = 0;
    std::uint64_t expectChecksum_ = 0;
    std::uint64_t checksum_;
    std::vector<std::uint8_t> iobuf_; ///< raw-byte block buffer
    std::size_t bufPos_ = 0;          ///< next unread byte in iobuf_
    std::size_t bufLen_ = 0;          ///< valid bytes in iobuf_
};

/**
 * The paper's compact annotation stream: two bits per dynamic load,
 * in load order. Produced by the LVP phase and merged back into a
 * trace by AnnotationMerger.
 */
class AnnotationStream
{
  public:
    /** Append one load's prediction state. */
    void append(PredState s);

    /** Prediction state of load number @p i. */
    PredState at(std::uint64_t i) const;

    /** Number of loads annotated. */
    std::uint64_t size() const { return count_; }

    /** Bytes of storage used (4 loads per byte). */
    std::size_t storageBytes() const { return bits_.size(); }

    /** Serialize to / deserialize from a file. */
    void save(const std::string &path) const;
    static AnnotationStream load(const std::string &path);

  private:
    std::vector<std::uint8_t> bits_; ///< 2 bits per load, packed
    std::uint64_t count_ = 0;
};

/**
 * A sink that records each load's PredState into an AnnotationStream
 * and forwards nothing (use behind an LvpAnnotator).
 */
class AnnotationRecorder : public TraceSink
{
  public:
    void consume(const TraceRecord &rec) override;
    void consumeBatch(std::span<const TraceRecord> recs) override;

    const AnnotationStream &stream() const { return stream_; }
    AnnotationStream takeStream() { return std::move(stream_); }

  private:
    AnnotationStream stream_;
};

/**
 * A pass-through stage that stamps each load's PredState from an
 * AnnotationStream (phase 3's input: raw trace + 2-bit annotations).
 */
class AnnotationMerger : public TraceSink
{
  public:
    AnnotationMerger(const AnnotationStream &stream, TraceSink &down)
        : stream_(stream), down_(down)
    {}

    void consume(const TraceRecord &rec) override;
    void consumeBatch(std::span<const TraceRecord> recs) override;
    void finish() override { down_.finish(); }

  private:
    const AnnotationStream &stream_;
    TraceSink &down_;
    std::uint64_t loadIndex_ = 0;
    std::vector<TraceRecord> batch_; ///< stamped copies for batches
};

} // namespace lvplib::trace

#endif // LVPLIB_TRACE_TRACE_FILE_HH

/**
 * @file
 * Binary trace serialization, mirroring the paper's decoupled
 * experimental flow (Section 5): phase 1 writes a full dynamic trace
 * to disk; phase 2 runs the LVP unit over it and emits a compact
 * annotation stream of TWO BITS PER LOAD ("to conserve trace
 * bandwidth by passing only two bits of state per load to the
 * microarchitectural simulator"); phase 3 replays the trace merged
 * with the annotations into a timing model.
 *
 * Record format (little-endian, fixed 26 bytes):
 *   u64 pc | u64 effAddr | u64 value | u8 taken | u8 pred
 * nextPc and the static instruction are reconstructed from the
 * Program at read time; seq is implicit in record order.
 */

#ifndef LVPLIB_TRACE_TRACE_FILE_HH
#define LVPLIB_TRACE_TRACE_FILE_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "trace/trace.hh"

namespace lvplib::trace
{

/** A sink that streams records into a binary trace file. */
class TraceFileWriter : public TraceSink
{
  public:
    /** Open @p path for writing; fatal on failure. */
    explicit TraceFileWriter(const std::string &path);
    ~TraceFileWriter() override;

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    void consume(const TraceRecord &rec) override;
    void finish() override;

    std::uint64_t recordsWritten() const { return written_; }

  private:
    std::FILE *file_;
    std::uint64_t written_ = 0;
    bool finished_ = false;
};

/**
 * Replays a binary trace file into a sink, re-binding each record to
 * its static instruction in @p prog. The program must be the one the
 * trace was generated from.
 */
class TraceFileReader
{
  public:
    TraceFileReader(const std::string &path, const isa::Program &prog);
    ~TraceFileReader();

    TraceFileReader(const TraceFileReader &) = delete;
    TraceFileReader &operator=(const TraceFileReader &) = delete;

    /**
     * Read one record into @p rec.
     * @return false at end of file.
     */
    bool next(TraceRecord &rec);

    /** Stream the whole file into @p sink (calls finish()). */
    std::uint64_t replay(TraceSink &sink);

  private:
    std::FILE *file_;
    const isa::Program &prog_;
    SeqNum seq_ = 0;
};

/**
 * The paper's compact annotation stream: two bits per dynamic load,
 * in load order. Produced by the LVP phase and merged back into a
 * trace by AnnotationMerger.
 */
class AnnotationStream
{
  public:
    /** Append one load's prediction state. */
    void append(PredState s);

    /** Prediction state of load number @p i. */
    PredState at(std::uint64_t i) const;

    /** Number of loads annotated. */
    std::uint64_t size() const { return count_; }

    /** Bytes of storage used (4 loads per byte). */
    std::size_t storageBytes() const { return bits_.size(); }

    /** Serialize to / deserialize from a file. */
    void save(const std::string &path) const;
    static AnnotationStream load(const std::string &path);

  private:
    std::vector<std::uint8_t> bits_; ///< 2 bits per load, packed
    std::uint64_t count_ = 0;
};

/**
 * A sink that records each load's PredState into an AnnotationStream
 * and forwards nothing (use behind an LvpAnnotator).
 */
class AnnotationRecorder : public TraceSink
{
  public:
    void consume(const TraceRecord &rec) override;

    const AnnotationStream &stream() const { return stream_; }
    AnnotationStream takeStream() { return std::move(stream_); }

  private:
    AnnotationStream stream_;
};

/**
 * A pass-through stage that stamps each load's PredState from an
 * AnnotationStream (phase 3's input: raw trace + 2-bit annotations).
 */
class AnnotationMerger : public TraceSink
{
  public:
    AnnotationMerger(const AnnotationStream &stream, TraceSink &down)
        : stream_(stream), down_(down)
    {}

    void consume(const TraceRecord &rec) override;
    void finish() override { down_.finish(); }

  private:
    const AnnotationStream &stream_;
    TraceSink &down_;
    std::uint64_t loadIndex_ = 0;
};

} // namespace lvplib::trace

#endif // LVPLIB_TRACE_TRACE_FILE_HH

/**
 * @file
 * Binary trace serialization, mirroring the paper's decoupled
 * experimental flow (Section 5): phase 1 writes a full dynamic trace
 * to disk; phase 2 runs the LVP unit over it and emits a compact
 * annotation stream of TWO BITS PER LOAD ("to conserve trace
 * bandwidth by passing only two bits of state per load to the
 * microarchitectural simulator"); phase 3 replays the trace merged
 * with the annotations into a timing model.
 *
 * Two on-disk formats share the 24-byte header (little-endian
 * throughout):
 *
 *   header (24 bytes)
 *     [ 0.. 8)  magic "LVPTRACE"
 *     [ 8..12)  u32 format version (2 or 3)
 *     [12..16)  u32 v2: record size in bytes (TraceRecordBytes)
 *                   v3: records per block (header blockRecords)
 *     [16..24)  u64 fingerprint of the generating program + run key
 *
 * v2 (row-major, readable for back compatibility):
 *   payload: N fixed 26-byte records
 *     u64 pc | u64 effAddr | u64 value | u8 taken | u8 pred
 *   footer (24 bytes)
 *     [ 0.. 8)  magic "ECARTPVL"
 *     [ 8..16)  u64 record count N
 *     [16..24)  u64 FNV-1a checksum over all payload bytes
 *
 * v3 (column-major, delta-compressed — the current write format):
 *   payload: ceil(N / blockRecords) blocks, each
 *     block header (24 bytes)
 *       u32 record count n | u32 pcBytes | u32 addrBytes
 *       | u32 valueBytes | u64 FNV-1a checksum of the column payload
 *     column payload
 *       pc column:    n delta+zigzag+varint values (trace/columnar.hh)
 *       addr column:  sparse (presence bitmap + nonzero deltas)
 *       value column: sparse
 *       taken column: n bits, packed
 *       pred column:  n two-bit PredStates, packed
 *   block index: one u64 absolute file offset per block, so a
 *     windowed reader seeks straight to the block holding any record
 *     and decodes at most one partial block
 *   footer (24 bytes)
 *     [ 0.. 8)  magic "ECARTPVL"
 *     [ 8..16)  u64 record count N
 *     [16..24)  u64 FNV-1a checksum over all block bytes (headers +
 *               column payloads; the index is validated structurally)
 *
 * The v3 columns exploit the paper's value locality on our own
 * storage: pc deltas are one instruction stride for straight-line
 * code, effective addresses and loaded values are absent (zero) for
 * most records and strongly local when present, so a record costs a
 * few bytes instead of 26. Bit-packing taken/pred makes every decoded
 * enum legal by construction — corruption detection rests on the
 * per-block checksum instead of per-record enum range checks, which
 * also gives windowed readers integrity coverage the v2 windows never
 * had.
 *
 * Both formats reconstruct nextPc and the static instruction from the
 * Program at read time; seq is implicit in record order. Memory ops
 * use the addr slot for their effective address; indirect branches
 * reuse it for their target.
 *
 * The fingerprint (programFingerprint() mixed with a caller-chosen
 * salt, e.g. workload|codegen|scale|maxInstructions) ties a trace to
 * the exact program it was generated from: a cache that stores traces
 * can detect stale files after a workload-builder or codegen change
 * without any out-of-band bookkeeping. Bump TraceFormatVersion when
 * the record encoding or the interpreter's observable semantics
 * change; readers accept versions {2, 3} and reject anything else.
 *
 * verifyTraceFile() is the non-fatal integrity check (used by the
 * run-cache and by `lvpbench --verify-trace-cache`): it validates the
 * envelope, every record (v2 enum bytes / v3 block structure and
 * per-block checksums), and the whole-payload checksum, and reports a
 * TraceFileStatus instead of exiting. TraceFileReader is strict: it
 * is for files that are expected to be valid and throws
 * SimError(TraceCorrupt) — or SimError(TraceIo) for an unopenable
 * file — on corruption, naming the reason (never silently truncating
 * a replay). The run-cache catches the exception and falls back to
 * in-memory interpretation.
 */

#ifndef LVPLIB_TRACE_TRACE_FILE_HH
#define LVPLIB_TRACE_TRACE_FILE_HH

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "trace/trace.hh"

namespace lvplib::trace
{

/** The current write format. Readers also accept TraceFormatVersionV2. */
constexpr std::uint32_t TraceFormatVersion = 3;

/** The legacy row-major format (still readable, never written by
 *  default; the migration path rewrites it as v3). */
constexpr std::uint32_t TraceFormatVersionV2 = 2;

/** v2 fixed encoded record size: u64 pc|effAddr|value + u8 taken|pred.
 *  Also the logical raw bytes-per-record against which v3 compression
 *  ratios are quoted. */
constexpr std::size_t TraceRecordBytes = 8 + 8 + 8 + 1 + 1;

/** Encoded header / footer sizes (see file comment for layout). */
constexpr std::size_t TraceHeaderBytes = 8 + 4 + 4 + 8;
constexpr std::size_t TraceFooterBytes = 8 + 8 + 8;

/** v3 per-block header: u32 n | u32 colBytes x3 | u64 checksum. */
constexpr std::size_t TraceBlockHeaderBytes = 4 * 4 + 8;

/** Default records per v3 block (the writer's blockRecords). Sized
 *  so one decoded block (~sizeof(TraceRecord) * blockRecords, about
 *  half a MiB) stays L2-resident: the reader's column scatter and the
 *  sink's consume pass walk the same block buffer, and a buffer
 *  bigger than the cache turns every pass into memory traffic (a
 *  64Ki-record block measured ~10% slower suite-wide). Tests shrink
 *  it further to exercise block-boundary seams on small traces. */
constexpr std::uint32_t TraceBlockRecords = 8 * 1024;

/** Largest blockRecords a reader will accept (bounds per-block
 *  allocations against hostile headers). */
constexpr std::uint32_t TraceMaxBlockRecords = 1u << 24;

/**
 * Stable fingerprint of a program image (instructions, data image,
 * symbols). Two programs that could produce different traces hash
 * differently; rebuilding the same workload hashes identically.
 */
std::uint64_t programFingerprint(const isa::Program &prog);

/** Fold @p salt (e.g. a run-cache key) into fingerprint @p fp. */
std::uint64_t mixFingerprint(std::uint64_t fp, const std::string &salt);

/** Why a trace file failed (or passed) verification. */
enum class TraceFileStatus
{
    Ok,
    OpenFailed,       ///< cannot open for reading
    TooSmall,         ///< shorter than header + footer
    BadMagic,         ///< header magic mismatch (not a trace file)
    BadVersion,       ///< written by a different format version
    BadRecordSize,    ///< v2 record-size / v3 blockRecords field bad
    BadFingerprint,   ///< stale: generating program/run key changed
    BadFooter,        ///< footer magic missing (interrupted write)
    PartialRecord,    ///< v2 payload has 1..25 trailing bytes
    CountMismatch,    ///< footer count disagrees with payload size
    BadRecord,        ///< v2 out-of-range taken/pred byte in a record
    BadBlock,         ///< v3 block header/index/column malformed
    ChecksumMismatch, ///< payload bytes corrupted
    ReadFailed,       ///< I/O error while scanning
    WriteFailed,      ///< migration could not write/publish the file
};

const char *traceFileStatusName(TraceFileStatus s);

/** Result of verifyTraceFile(). */
struct TraceVerifyReport
{
    TraceFileStatus status = TraceFileStatus::Ok;
    std::uint64_t records = 0;     ///< footer count (when readable)
    std::uint64_t fingerprint = 0; ///< header fingerprint (when readable)
    std::uint32_t version = 0;     ///< header format version (2 or 3)
    std::uint64_t fileBytes = 0;   ///< on-disk size (when stat-able)
    std::string detail;            ///< human-readable specifics

    bool ok() const { return status == TraceFileStatus::Ok; }

    /** Raw (v2-equivalent) bytes per on-disk byte; 1.0 for v2. */
    double
    compressionRatio() const
    {
        return fileBytes > 0
                   ? static_cast<double>(records) * TraceRecordBytes /
                         static_cast<double>(fileBytes)
                   : 0.0;
    }
};

/**
 * Fully verify @p path: envelope, payload structure (v2 per-record
 * enum bytes / v3 block walk with per-block checksums), whole-payload
 * checksum, and (when given) the expected fingerprint. Never fatal; a
 * missing or corrupt file is reported in the returned status.
 */
TraceVerifyReport
verifyTraceFile(const std::string &path,
                std::optional<std::uint64_t> expectFingerprint =
                    std::nullopt);

/**
 * Rewrite the v2 trace at @p path as v3, in place: transcode into a
 * unique `<path>.tmp.<pid>.<n>` sibling, then atomically rename over
 * the original (the same publish discipline the run-cache writers
 * use, so concurrent readers only ever see a complete file). The
 * fingerprint and record stream are preserved exactly; a v2-invalid
 * source or a failed write leaves the original untouched.
 *
 * @return the post-migration verify report of @p path on success;
 * on failure, a report naming what stopped the rewrite (the source's
 * verify status, or WriteFailed).
 */
TraceVerifyReport migrateTraceFile(const std::string &path);

/** TraceFileWriter knobs; the defaults write the current format. */
struct TraceWriterOptions
{
    /** TraceFormatVersion (v3) or TraceFormatVersionV2 (compat tests
     *  and migration goldens only). */
    std::uint32_t version = TraceFormatVersion;
    /** v3 records per block, [1, TraceMaxBlockRecords]. */
    std::uint32_t blockRecords = TraceBlockRecords;
};

/**
 * A sink that streams records into a binary trace file.
 *
 * v3 records are staged column-wise and encoded one block at a time;
 * encoded bytes (v3 blocks / v2 records) are written with one fwrite
 * per buffer-full rather than one per record. A latched write failure
 * still poisons the whole file, so buffering does not change what
 * callers can observe (a file is either complete and verified or
 * discarded).
 *
 * I/O errors (open, write, flush, close) are latched instead of
 * fatal: good() turns false, further records are dropped, and close()
 * reports overall success so callers can discard the file and fall
 * back rather than publish a truncated trace. A file is only valid
 * once finish() has written the footer and close() returned true.
 */
class TraceFileWriter : public TraceSink
{
  public:
    /** Open @p path for writing; failure is latched, not fatal. */
    explicit TraceFileWriter(const std::string &path,
                             std::uint64_t fingerprint = 0,
                             const TraceWriterOptions &opts = {});
    ~TraceFileWriter() override;

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    void consume(const TraceRecord &rec) override;
    void consumeBatch(std::span<const TraceRecord> recs) override;

    /**
     * Append one record from its encoded fields (the addr slot
     * already holding effAddr or, for indirect branches, nextPc).
     * consume() lowers TraceRecords onto this; the v2->v3 migration
     * path feeds it directly, since transcoding raw slots needs no
     * Program to resolve instructions.
     */
    void appendRaw(Addr pc, Addr addrSlot, Word value, bool taken,
                   PredState pred);

    /** Write the block index (v3) and footer, then flush
     *  (idempotent). */
    void finish() override;

    /**
     * finish() if needed, then fclose.
     * @return true when every write (records, footer, flush, close)
     * succeeded; on false the file must not be used.
     */
    bool close();

    /** False once any I/O error has occurred. */
    bool good() const { return !failed_; }

    /** First I/O error message ("" when good()). */
    const std::string &error() const { return error_; }

    std::uint64_t recordsWritten() const { return written_; }

  private:
    void fail(const std::string &what);
    void encodeBlock(); ///< v3: drain the staged columns into wbuf_
    void flushBuffer();

    std::FILE *file_;
    std::string path_;
    std::uint64_t fingerprint_;
    TraceWriterOptions opts_;
    std::uint64_t checksum_;
    std::uint64_t written_ = 0;
    bool finished_ = false;
    bool closed_ = false;
    bool failed_ = false;
    std::string error_;
    std::vector<std::uint8_t> wbuf_; ///< encoded-byte block buffer

    /** @{ v3 column staging for the open block. */
    std::vector<std::uint64_t> stagePc_, stageAddr_, stageVal_;
    std::vector<std::uint8_t> stageTaken_, stagePred_;
    std::vector<std::uint8_t> colBuf_;   ///< per-block scratch
    std::vector<std::uint64_t> index_;   ///< block file offsets
    std::uint64_t fileOffset_ = 0;       ///< next block's offset
    /** @} */
};

/**
 * Replays a binary trace file into a sink, re-binding each record to
 * its static instruction in @p prog. The program must be the one the
 * trace was generated from (pass @p expectFingerprint to enforce it).
 * The format version is auto-detected from the header; v2 and v3
 * files replay to the identical record stream.
 *
 * The reader is strict: a malformed envelope, a truncated payload, a
 * corrupt block or out-of-range record byte or pc, or a checksum
 * mismatch throws SimError(TraceCorrupt) with a diagnostic —
 * corruption is never reported as a clean end-of-trace. An unopenable
 * file throws SimError(TraceIo). Callers that must survive corrupt
 * files catch SimError and discard the partial replay (the run-cache
 * falls back to in-memory interpretation and deletes the file).
 *
 * I/O is block-buffered. v3 reads one compressed block per fread and
 * decodes its columns straight into an in-memory TraceRecord block;
 * replay() hands spans of that same block buffer to
 * TraceSink::consumeBatch() with no further copy, while the next
 * compressed block is read and software-prefetched behind the decode
 * (set LVPLIB_TRACE_PREFETCH=0 to disable the prefetch). v2 fills a
 * multi-record byte buffer and decodes records out of it. Validation
 * is strictly in record order — a corrupt record throws before any
 * later record is observed by the sink.
 */
class TraceFileReader
{
  public:
    /**
     * A half-open record window [first, first + count) of a trace
     * file, for sharded replay. A windowed reader seeks straight to
     * record `first` (v3: to the block holding it, decoding at most
     * one partial block), delivers exactly `count` records with their
     * absolute sequence numbers, then reports end-of-trace WITHOUT
     * the whole-payload checksum comparison (the checksum covers all
     * payload bytes, which a window by definition does not read; v3
     * windows still verify every block checksum they touch). Use only
     * on files already verified end to end — the run cache verifies
     * before replaying, and the sharded engine's leader pass reads
     * the full file first. Per-record validation (chaos read-flip,
     * pc / enum validation) is identical to a full read.
     */
    struct Window
    {
        std::uint64_t first = 0;
        std::uint64_t count = 0;
    };

    TraceFileReader(const std::string &path, const isa::Program &prog,
                    std::optional<std::uint64_t> expectFingerprint =
                        std::nullopt);

    /** Open a windowed reader (see Window). Throws TraceCorrupt when
     *  the window exceeds the footer's record count. */
    TraceFileReader(const std::string &path, const isa::Program &prog,
                    std::optional<std::uint64_t> expectFingerprint,
                    const Window &window);

    ~TraceFileReader();

    TraceFileReader(const TraceFileReader &) = delete;
    TraceFileReader &operator=(const TraceFileReader &) = delete;

    /**
     * Read one record into @p rec.
     * @return false at the end of the trace (checksum-verified for a
     * full reader; windowed readers skip the whole-payload check).
     */
    bool next(TraceRecord &rec);

    /** Stream the whole file (or window) into @p sink (calls
     *  finish()). */
    std::uint64_t replay(TraceSink &sink);

    /** Total records promised by the footer. */
    std::uint64_t records() const { return records_; }

    /** Fingerprint stored in the header. */
    std::uint64_t fingerprint() const { return fingerprint_; }

    /** Header format version (2 or 3). */
    std::uint32_t version() const { return version_; }

  private:
    [[noreturn]] void corrupt(const std::string &what) const;

    /** @{ v2 row-major path. */
    void fillBuffer();
    bool nextV2(TraceRecord &rec);
    /** @} */

    /** @{ v3 block path. */
    std::uint64_t blockBytes(std::uint64_t b) const;
    void loadBlockFor(std::uint64_t seq);
    void decodeBlock(std::uint64_t b, std::uint8_t *data,
                     std::size_t len);
    bool nextV3(TraceRecord &rec);
    /** @} */

    std::FILE *file_;
    const isa::Program &prog_;
    std::string path_;
    SeqNum seq_ = 0;
    std::uint64_t records_ = 0;
    std::uint64_t end_ = 0;       ///< one past the last record to read
    bool verifyChecksum_ = true;  ///< false for windowed readers
    std::uint32_t version_ = TraceFormatVersion;
    std::uint64_t fingerprint_ = 0;
    std::uint64_t expectChecksum_ = 0;
    std::uint64_t checksum_;

    /** @{ v2 state. */
    std::vector<std::uint8_t> iobuf_; ///< raw-byte block buffer
    std::size_t bufPos_ = 0;          ///< next unread byte in iobuf_
    std::size_t bufLen_ = 0;          ///< valid bytes in iobuf_
    /** @} */

    /** @{ v3 state. */
    std::uint32_t blockRecords_ = 0;
    std::uint64_t indexStart_ = 0;      ///< file offset of the index
    std::vector<std::uint64_t> index_;  ///< block file offsets
    std::uint64_t filePos_ = 0;         ///< current stream position
    std::uint64_t nextBlock_ = 0;       ///< next block not yet loaded
    bool prefetch_ = true;              ///< LVPLIB_TRACE_PREFETCH
    std::vector<std::uint8_t> cblock_;  ///< current compressed block
    std::vector<std::uint8_t> pblock_;  ///< prefetched next block
    std::size_t pblockLen_ = 0;         ///< valid bytes in pblock_
    std::uint64_t pblockBlock_ = 0;     ///< block number in pblock_
    std::vector<TraceRecord> decoded_;  ///< decoded current block
    std::size_t decPos_ = 0;            ///< next record in decoded_
    /** @} */
};

/**
 * The paper's compact annotation stream: two bits per dynamic load,
 * in load order. Produced by the LVP phase and merged back into a
 * trace by AnnotationMerger.
 */
class AnnotationStream
{
  public:
    /** Append one load's prediction state. */
    void append(PredState s);

    /** Prediction state of load number @p i. */
    PredState at(std::uint64_t i) const;

    /** Number of loads annotated. */
    std::uint64_t size() const { return count_; }

    /** Bytes of storage used (4 loads per byte). */
    std::size_t storageBytes() const { return bits_.size(); }

    /** Serialize to / deserialize from a file. */
    void save(const std::string &path) const;
    static AnnotationStream load(const std::string &path);

  private:
    std::vector<std::uint8_t> bits_; ///< 2 bits per load, packed
    std::uint64_t count_ = 0;
};

/**
 * A sink that records each load's PredState into an AnnotationStream
 * and forwards nothing (use behind an LvpAnnotator).
 */
class AnnotationRecorder : public TraceSink
{
  public:
    void consume(const TraceRecord &rec) override;
    void consumeBatch(std::span<const TraceRecord> recs) override;

    const AnnotationStream &stream() const { return stream_; }
    AnnotationStream takeStream() { return std::move(stream_); }

  private:
    AnnotationStream stream_;
};

/**
 * A pass-through stage that stamps each load's PredState from an
 * AnnotationStream (phase 3's input: raw trace + 2-bit annotations).
 */
class AnnotationMerger : public TraceSink
{
  public:
    AnnotationMerger(const AnnotationStream &stream, TraceSink &down)
        : stream_(stream), down_(down)
    {}

    void consume(const TraceRecord &rec) override;
    void consumeBatch(std::span<const TraceRecord> recs) override;
    void finish() override { down_.finish(); }

  private:
    const AnnotationStream &stream_;
    TraceSink &down_;
    std::uint64_t loadIndex_ = 0;
    std::vector<TraceRecord> batch_; ///< stamped copies for batches
};

} // namespace lvplib::trace

#endif // LVPLIB_TRACE_TRACE_FILE_HH

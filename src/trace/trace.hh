/**
 * @file
 * Dynamic-trace record types and the streaming sink interface that
 * connects the three phases of the paper's framework (Section 5):
 * trace generation -> LVP-unit simulation -> timing simulation.
 */

#ifndef LVPLIB_TRACE_TRACE_HH
#define LVPLIB_TRACE_TRACE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "isa/instruction.hh"
#include "util/types.hh"

namespace lvplib::trace
{

/**
 * Per-load prediction annotation produced by the LVP-unit phase.
 * The paper passes exactly this (two bits of state per load) into the
 * timing simulators.
 */
enum class PredState : std::uint8_t
{
    None,      ///< LCT said "don't predict" (or no LVP unit present)
    Incorrect, ///< predicted, verification failed
    Correct,   ///< predicted, verified against the memory value
    Constant,  ///< predicted and verified by the CVU (no cache access)
};

/** Number of PredState values (for validating serialized bytes). */
constexpr unsigned NumPredStates = 4;

const char *predStateName(PredState s);

/**
 * One retired dynamic instruction. The static instruction is referenced
 * by pointer; the Program outlives every simulation phase.
 */
struct TraceRecord
{
    SeqNum seq = 0;      ///< dynamic sequence number, from 0
    Addr pc = 0;         ///< instruction address
    const isa::Instruction *inst = nullptr;
    Addr effAddr = 0;    ///< effective address (memory ops only)
    Word value = 0;      ///< loaded value / stored value (memory ops)
    Word destValue = 0;  ///< value written to destReg() (any producer)
    bool taken = false;  ///< branch outcome (branches only)
    Addr nextPc = 0;     ///< architectural successor pc
    PredState pred = PredState::None; ///< filled in by the LVP phase
};

/**
 * A consumer of a dynamic-instruction stream. Phases compose by
 * chaining sinks; finish() flushes at end-of-trace.
 *
 * Producers that already hold records in memory (the block-buffered
 * trace reader, the interpreter's retire buffer) hand whole spans to
 * consumeBatch(), amortizing one virtual call over thousands of
 * records. The default forwards record-at-a-time, so a sink only
 * implementing consume() observes the exact same sequence; hot sinks
 * override consumeBatch() to keep the per-record loop non-virtual.
 * Overrides must preserve record order and per-record effects (an
 * exception thrown at record k must leave records [0, k) consumed).
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Consume one retired instruction. */
    virtual void consume(const TraceRecord &rec) = 0;

    /** Consume a span of retired instructions, in order. */
    virtual void
    consumeBatch(std::span<const TraceRecord> recs)
    {
        for (const TraceRecord &rec : recs)
            consume(rec);
    }

    /** End of trace. */
    virtual void finish() {}
};

/** A sink that forwards every record to two downstream sinks. */
class TeeSink : public TraceSink
{
  public:
    TeeSink(TraceSink &first, TraceSink &second)
        : first_(first), second_(second)
    {}

    void
    consume(const TraceRecord &rec) override
    {
        first_.consume(rec);
        second_.consume(rec);
    }

    void
    consumeBatch(std::span<const TraceRecord> recs) override
    {
        first_.consumeBatch(recs);
        second_.consumeBatch(recs);
    }

    void
    finish() override
    {
        first_.finish();
        second_.finish();
    }

  private:
    TraceSink &first_;
    TraceSink &second_;
};

/**
 * A sink that forwards every record (and batch) to N downstream
 * sinks, in the order given. One trace replay through a MultiSink
 * feeds a whole configuration sweep in a single pass over the file —
 * each downstream sees exactly the stream it would have seen from its
 * own private replay.
 */
class MultiSink : public TraceSink
{
  public:
    explicit MultiSink(std::vector<TraceSink *> sinks)
        : sinks_(std::move(sinks))
    {}

    void
    consume(const TraceRecord &rec) override
    {
        for (TraceSink *s : sinks_)
            s->consume(rec);
    }

    void
    consumeBatch(std::span<const TraceRecord> recs) override
    {
        for (TraceSink *s : sinks_)
            s->consumeBatch(recs);
    }

    void
    finish() override
    {
        for (TraceSink *s : sinks_)
            s->finish();
    }

  private:
    std::vector<TraceSink *> sinks_;
};

} // namespace lvplib::trace

#endif // LVPLIB_TRACE_TRACE_HH

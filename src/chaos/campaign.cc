#include "chaos/campaign.hh"

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "chaos/chaos.hh"
#include "core/lvp_unit.hh"
#include "sim/parallel.hh"
#include "sim/pipeline_driver.hh"
#include "sim/resilience.hh"
#include "sim/run_cache.hh"
#include "util/logging.hh"
#include "vm/interpreter.hh"
#include "workloads/workload.hh"

namespace lvplib::chaos
{

namespace
{

namespace fs = std::filesystem;
using workloads::CodeGen;
using workloads::Workload;

class NullSink : public trace::TraceSink
{
  public:
    void consume(const trace::TraceRecord &) override {}
};

/** Everything an architectural-equivalence check compares. */
struct ArchSnapshot
{
    bool completed = false;
    bool hasResult = false;
    Word result = 0;           ///< the "__result" checksum word
    std::uint64_t memHash = 0; ///< full final-memory-image hash
    std::uint64_t retired = 0;
    std::size_t pages = 0;
    core::LvpStats lvp;
};

ArchSnapshot
runAnnotated(const isa::Program &prog, const core::LvpConfig &cfg,
             std::uint64_t maxInstructions)
{
    vm::Interpreter interp(prog);
    NullSink null;
    core::LvpAnnotator annot(cfg, null);
    interp.run(&annot, maxInstructions);
    ArchSnapshot s;
    s.completed = interp.halted();
    if (prog.hasSymbol("__result")) {
        s.hasResult = true;
        s.result = interp.memory().read(prog.symbol("__result"), 8);
    }
    s.memHash = interp.memory().imageHash();
    s.retired = interp.retired();
    s.pages = interp.memory().pageCount();
    s.lvp = annot.unit().stats();
    return s;
}

/** Bit-identical architectural state? (Predictor stats may differ.) */
bool
archEqual(const ArchSnapshot &a, const ArchSnapshot &b)
{
    return a.completed == b.completed && a.hasResult == b.hasResult &&
           a.result == b.result && a.memHash == b.memHash &&
           a.retired == b.retired && a.pages == b.pages;
}

bool
lvpStatsEqual(const core::LvpStats &a, const core::LvpStats &b)
{
    return a.loads == b.loads && a.noPred == b.noPred &&
           a.incorrect == b.incorrect && a.correct == b.correct &&
           a.constants == b.constants &&
           a.actualUnpred == b.actualUnpred &&
           a.actualPred == b.actualPred &&
           a.unpredIdentified == b.unpredIdentified &&
           a.predIdentified == b.predIdentified &&
           a.cvuInsertions == b.cvuInsertions &&
           a.cvuStoreInvalidations == b.cvuStoreInvalidations &&
           a.cvuDisplaceInvalidations == b.cvuDisplaceInvalidations &&
           a.cvuStaleHits == b.cvuStaleHits;
}

} // namespace

int
runChaosCampaign(const CampaignOptions &opts, std::ostream &out)
{
    auto &ce = engine();
    ce.disarm();
    ce.resetCounts();

    const auto &all = workloads::allWorkloads();
    unsigned n = opts.numWorkloads;
    if (n == 0 || n > all.size())
        n = static_cast<unsigned>(all.size());
    const core::LvpConfig cfg = core::LvpConfig::simple();
    const sim::RunConfig rc{opts.maxInstructions};

    out << "== lvpchaos campaign ==\n"
        << "seed " << opts.seed << "  scale " << opts.scale
        << "  workloads " << n << "  predictor-fault quota "
        << opts.minPredictorFaults << "\n";

    // Fault-free references (chaos disarmed).
    std::vector<std::shared_ptr<const isa::Program>> progs;
    std::vector<ArchSnapshot> refs;
    for (unsigned i = 0; i < n; ++i) {
        progs.push_back(std::make_shared<const isa::Program>(
            all[i].build(CodeGen::Ppc, opts.scale)));
        refs.push_back(
            runAnnotated(*progs[i], cfg, opts.maxInstructions));
    }

    unsigned violations = 0;

    // ---- Phase 1: predictor-state faults (speculation safety) ----
    // Tighten the injection period round by round until the fault
    // quota is met: every faulted run must match its reference's
    // architectural state exactly, with zero CVU stale hits.
    out << "\n-- phase 1: predictor-state corruption --\n";
    std::uint64_t predictorFaults = 0;
    for (std::uint64_t period = 97;; period /= 2) {
        if (period == 0)
            period = 1;
        for (unsigned i = 0; i < n; ++i) {
            std::uint64_t before = ce.injectedTotal();
            ce.arm({opts.seed, PredictorPoints, period});
            ArchSnapshot got =
                runAnnotated(*progs[i], cfg, opts.maxInstructions);
            ce.disarm();
            std::uint64_t injected = ce.injectedTotal() - before;
            predictorFaults += injected;
            bool ok =
                archEqual(refs[i], got) && got.lvp.cvuStaleHits == 0;
            if (!ok)
                ++violations;
            out << "period " << period << "  " << all[i].name << "  "
                << injected << " faults (lvpt "
                << ce.injected(Point::LvptValue) << ", lct "
                << ce.injected(Point::LctCounter) << ", cvu "
                << ce.injected(Point::CvuEntry) << " cumulative)  "
                << (ok ? "arch-identical" : "ARCH-DIVERGENCE")
                << "\n";
        }
        if (violations || predictorFaults >= opts.minPredictorFaults ||
            period == 1)
            break;
    }
    out << "predictor faults injected: " << predictorFaults << "\n";
    if (predictorFaults < opts.minPredictorFaults) {
        ++violations;
        out << "VIOLATION: fault quota not met at period 1\n";
    }

    // ---- Phase 2: engine faults (recovery) ----
    out << "\n-- phase 2: engine-fault recovery --\n";
    auto &cache = sim::RunCache::instance();
    const std::string savedTraceDir = cache.traceDir();
    cache.clear();
    std::string dir;
    {
        std::string tmpl =
            (fs::temp_directory_path() / "lvpchaos-XXXXXX").string();
        if (char *d = mkdtemp(tmpl.data()))
            dir = d;
    }
    if (dir.empty()) {
        out << "VIOLATION: cannot create temp trace dir\n";
        return 4;
    }
    cache.setTraceDir(dir);

    // Step A: bit flips on trace read. Write traces fault-free, then
    // replay them with TraceReadFlip armed: a flipped replay must be
    // detected, discarded, and replaced by an in-memory run whose
    // stats match the reference exactly.
    for (unsigned i = 0; i < n; ++i)
        cache.lvpOnly(all[i], CodeGen::Ppc, opts.scale, cfg, rc);
    cache.clear(); // forget the memos, keep the trace files
    {
        std::uint64_t before = ce.injected(Point::TraceReadFlip);
        std::uint64_t recovered0 = ce.recoveredTotal();
        ce.arm({opts.seed, pointBit(Point::TraceReadFlip), 512});
        for (unsigned i = 0; i < n; ++i) {
            core::LvpStats got = cache.lvpOnly(all[i], CodeGen::Ppc,
                                               opts.scale, cfg, rc);
            bool ok = lvpStatsEqual(got, refs[i].lvp);
            if (!ok)
                ++violations;
            out << "read-flip  " << all[i].name << "  "
                << (ok ? "stats-identical" : "STATS-DIVERGENCE")
                << "\n";
        }
        ce.disarm();
        out << "read-flip faults "
            << (ce.injected(Point::TraceReadFlip) - before)
            << ", recovered events "
            << (ce.recoveredTotal() - recovered0) << "\n";
    }

    // Step B: failing writes/renames. Regeneration fails, every run
    // falls back to in-memory interpretation, and after enough
    // consecutive failures the cache degrades to cache-less mode.
    std::error_code ec;
    fs::remove_all(dir, ec);
    fs::create_directory(dir, ec);
    cache.clear();
    {
        std::uint64_t recovered0 = ce.recoveredTotal();
        ce.arm({opts.seed,
                pointBit(Point::TraceWriteRecord) |
                    pointBit(Point::TraceWriteFooter) |
                    pointBit(Point::CacheRename),
                2});
        for (unsigned i = 0; i < n; ++i) {
            core::LvpStats got = cache.lvpOnly(all[i], CodeGen::Ppc,
                                               opts.scale, cfg, rc);
            bool ok = lvpStatsEqual(got, refs[i].lvp);
            if (!ok)
                ++violations;
            out << "write-fail  " << all[i].name << "  "
                << (ok ? "stats-identical" : "STATS-DIVERGENCE")
                << "\n";
        }
        ce.disarm();
        out << "write-fail recovered events "
            << (ce.recoveredTotal() - recovered0) << ", cache "
            << (cache.traceDir().empty() ? "degraded to in-memory"
                                         : "still on disk")
            << "\n";
    }

    // Step C: worker tasks dying inside a TaskPool, absorbed by the
    // engine's bounded retry (recovery) or reported as a clean
    // RetryExhausted error — either is a pass; a crash is not.
    {
        ce.arm({opts.seed, pointBit(Point::TaskThrow), 16});
        sim::TaskPool pool(2);
        std::vector<int> items(32);
        for (int i = 0; i < 32; ++i)
            items[static_cast<std::size_t>(i)] = i;
        sim::RetryPolicy policy;
        policy.attempts = 6;
        policy.sleep = false;
        try {
            auto doubled = sim::runWithRetry(
                "chaos.taskpool", policy, [&] {
                    return pool.map(items,
                                    [](const int &v) { return v * 2; });
                });
            bool ok = doubled.size() == items.size();
            for (std::size_t i = 0; ok && i < doubled.size(); ++i)
                ok = doubled[i] == items[i] * 2;
            if (!ok)
                ++violations;
            out << "task-throw  "
                << (ok ? "recovered (results intact)"
                       : "WRONG-RESULTS")
                << "\n";
        } catch (const SimError &e) {
            out << "task-throw  clean error ("
                << errorKindName(e.kind()) << ")\n";
        }
        ce.disarm();
        out << "task-throw faults " << ce.injected(Point::TaskThrow)
            << " cumulative\n";
    }

    // Step D: watchdog. A run that exceeds its budget must be cut
    // short with SimError(Watchdog), not run away or crash.
    {
        bool caught = false;
        try {
            vm::Interpreter interp(*progs[0]);
            NullSink null;
            sim::WatchdogSink wd(&null, /*wallLimitMs=*/0,
                                 /*recordBudget=*/1000);
            interp.run(&wd, opts.maxInstructions);
        } catch (const SimError &e) {
            caught = e.kind() == ErrorKind::Watchdog;
        }
        if (!caught)
            ++violations;
        out << "watchdog  "
            << (caught ? "clean error (watchdog)" : "NOT-TRIGGERED")
            << "\n";
    }

    // Restore the process state the campaign borrowed.
    ce.disarm();
    cache.clear();
    cache.setTraceDir(savedTraceDir);
    fs::remove_all(dir, ec);

    out << "\ninjected " << ce.injectedTotal()
        << " faults total, recovered events " << ce.recoveredTotal()
        << "\nverdict: "
        << (violations == 0 ? "PASS"
                            : "FAIL (" + std::to_string(violations) +
                                  " violation(s))")
        << "\n";
    return violations == 0 ? 0 : 4;
}

} // namespace lvplib::chaos

#include "chaos/chaos.hh"

#include <string>

#include "obs/metrics.hh"

namespace lvplib::chaos
{

namespace
{

/** 64-bit finalizer (MurmurHash3 fmix64): full avalanche. */
std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

std::uint64_t
decision(std::uint64_t seed, Point p, std::uint64_t streamKey,
         std::uint64_t n, std::uint64_t salt)
{
    std::uint64_t h = seed + salt;
    h = mix(h ^ (static_cast<std::uint64_t>(p) + 1) *
                    0x9e3779b97f4a7c15ull);
    h = mix(h ^ streamKey);
    h = mix(h ^ n * 0xbf58476d1ce4e5b9ull);
    return h;
}

} // namespace

const char *
pointName(Point p)
{
    switch (p) {
      case Point::TraceWriteRecord: return "trace_write_record";
      case Point::TraceWriteFooter: return "trace_write_footer";
      case Point::TraceReadFlip: return "trace_read_flip";
      case Point::CacheRename: return "cache_rename";
      case Point::TaskThrow: return "task_throw";
      case Point::LvptValue: return "lvpt_value";
      case Point::LctCounter: return "lct_counter";
      case Point::CvuEntry: return "cvu_entry";
      case Point::ServeFrame: return "serve_frame";
      case Point::ServeTornWrite: return "serve_torn_write";
      case Point::ServeConnReset: return "serve_conn_reset";
      case Point::ServeStall: return "serve_stall";
      case Point::ServeWorkerKill: return "serve_worker_kill";
      case Point::NumPoints: break;
    }
    return "?";
}

void
ChaosEngine::arm(const ChaosConfig &cfg)
{
    std::lock_guard<std::mutex> lock(m_);
    seed_.store(cfg.seed, std::memory_order_relaxed);
    period_.store(cfg.period == 0 ? 1 : cfg.period,
                  std::memory_order_relaxed);
    points_.store(cfg.points, std::memory_order_relaxed);
    // Resolve the obs mirrors now (registry get-or-create, stable
    // references) so the injection fast path never allocates. Lazy on
    // purpose: a run that never arms never registers chaos.* metrics.
    for (unsigned i = 0; i < NumChaosPoints; ++i) {
        if (cfg.points & (1u << i)) {
            obsInjected_[i].store(
                &obs::metrics().counter(
                    std::string("chaos.injected.") +
                    pointName(static_cast<Point>(i))),
                std::memory_order_release);
        }
    }
    armed_.store(true, std::memory_order_release);
}

void
ChaosEngine::disarm()
{
    armed_.store(false, std::memory_order_relaxed);
}

ChaosConfig
ChaosEngine::config() const
{
    ChaosConfig cfg;
    cfg.seed = seed_.load(std::memory_order_relaxed);
    cfg.period = period_.load(std::memory_order_relaxed);
    cfg.points = points_.load(std::memory_order_relaxed);
    return cfg;
}

bool
ChaosEngine::shouldInjectSlow(Point p, std::uint64_t streamKey,
                              std::uint64_t n)
{
    unsigned idx = static_cast<unsigned>(p);
    if (!(points_.load(std::memory_order_relaxed) & (1u << idx)))
        return false;
    std::uint64_t h = decision(seed_.load(std::memory_order_relaxed),
                               p, streamKey, n, /*salt=*/0);
    if (h % period_.load(std::memory_order_relaxed) != 0)
        return false;
    injected_[idx].fetch_add(1, std::memory_order_relaxed);
    if (auto *c = obsInjected_[idx].load(std::memory_order_acquire))
        c->add();
    return true;
}

std::uint64_t
ChaosEngine::faultHash(Point p, std::uint64_t streamKey,
                       std::uint64_t n) const
{
    return decision(seed_.load(std::memory_order_relaxed), p,
                    streamKey, n, /*salt=*/0x5fau);
}

void
ChaosEngine::recordRecovered(const char *site)
{
    recovered_.fetch_add(1, std::memory_order_relaxed);
    // Rare path (a fault actually happened): a by-name registry
    // lookup is fine, and keeps chaos.recovered.* out of fault-free
    // metric dumps.
    obs::metrics()
        .counter(std::string("chaos.recovered.") + site)
        .add();
}

std::uint64_t
ChaosEngine::injected(Point p) const
{
    return injected_[static_cast<unsigned>(p)].load(
        std::memory_order_relaxed);
}

std::uint64_t
ChaosEngine::injectedTotal() const
{
    std::uint64_t total = 0;
    for (const auto &c : injected_)
        total += c.load(std::memory_order_relaxed);
    return total;
}

std::uint64_t
ChaosEngine::recoveredTotal() const
{
    return recovered_.load(std::memory_order_relaxed);
}

void
ChaosEngine::resetCounts()
{
    for (auto &c : injected_)
        c.store(0, std::memory_order_relaxed);
    recovered_.store(0, std::memory_order_relaxed);
}

ChaosEngine &
engine()
{
    static ChaosEngine e;
    return e;
}

std::uint64_t
streamKey(std::string_view name)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : name) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x00000100000001b3ull;
    }
    return h;
}

} // namespace lvplib::chaos

/**
 * @file
 * The lvpchaos campaign (`lvpbench --chaos SEED[,N]`): run real
 * workloads under seeded fault injection and check the two system
 * invariants end to end:
 *
 *  1. Speculation safety (the paper's Section 4 contract): corrupting
 *     predictor state — LVPT values, LCT counters, CVU entries — may
 *     cost predictions but must never change architectural results.
 *     Each faulted run's final "__result" word, memory-image hash,
 *     retired-instruction count, and CVU stale-hit count (must stay
 *     0) are compared against a fault-free reference.
 *
 *  2. Engine recovery: every injected engine fault (trace write/read
 *     corruption, cache rename failure, worker-task death, watchdog
 *     expiry) is either absorbed by a recovery path — fallback to
 *     in-memory replay, degrade to cache-less operation, retry — or
 *     surfaces as a clean typed SimError. Never a crash, never a
 *     silently wrong table.
 *
 * The report is deterministic per seed (no timestamps, no wall-clock
 * numbers), so CI can diff two runs of the same seed byte for byte.
 */

#ifndef LVPLIB_CHAOS_CAMPAIGN_HH
#define LVPLIB_CHAOS_CAMPAIGN_HH

#include <cstdint>
#include <iosfwd>

namespace lvplib::chaos
{

/** Knobs for one campaign run. */
struct CampaignOptions
{
    std::uint64_t seed = 1;
    /** Keep tightening the fault period until at least this many
     *  predictor-state faults have been injected. */
    std::uint64_t minPredictorFaults = 1000;
    unsigned scale = 2;            ///< workload scale
    std::uint64_t maxInstructions = 200'000'000;
    unsigned numWorkloads = 3;     ///< first N of allWorkloads()
};

/**
 * Run the campaign, writing the per-seed report to @p out.
 * @return 0 when every invariant held, 4 on any violation.
 */
int runChaosCampaign(const CampaignOptions &opts, std::ostream &out);

} // namespace lvplib::chaos

#endif // LVPLIB_CHAOS_CAMPAIGN_HH

/**
 * @file
 * lvpchaos: deterministic, seeded fault injection for the experiment
 * engine and the predictor structures.
 *
 * The engine is a process-wide singleton guarded by one relaxed
 * atomic load (the same near-zero-cost-when-off pattern as
 * obs::Timeline): when disarmed, every injection site costs a single
 * branch and touches no shared state. When armed, each site asks
 * shouldInject(point, streamKey, n) whether fault number @p n of its
 * decision stream fires. Decisions are STATELESS — a pure hash of
 * (seed, point, streamKey, n) — so they do not depend on thread
 * scheduling or on how many other sites ran first: the same seed
 * replays the same faults at the same places, which is what lets the
 * chaos campaign compare a faulted run against a fault-free reference
 * bit for bit.
 *
 * Stream keys name an independent decision stream per site instance
 * (a trace file's fingerprint, a predictor's config name, a cache
 * path); @p n is the site's own monotonic event counter (record
 * number, load number, submission number).
 *
 * Injected/recovered events publish as volatile chaos.* counters via
 * the PR 3 MetricRegistry, registered lazily (at arm() or on the
 * first recovery) so a fault-free run's metric dump is byte-identical
 * to a build without chaos.
 */

#ifndef LVPLIB_CHAOS_CHAOS_HH
#define LVPLIB_CHAOS_CHAOS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string_view>

namespace lvplib::obs
{
class Counter;
} // namespace lvplib::obs

namespace lvplib::chaos
{

/** Every place a fault can be injected. */
enum class Point : unsigned
{
    TraceWriteRecord, ///< trace writer: one record fwrite fails (short
                      ///< write / ENOSPC)
    TraceWriteFooter, ///< trace writer: the footer write fails
    TraceReadFlip,    ///< trace reader: one bit of a record flips
    CacheRename,      ///< run cache: publishing rename fails
    TaskThrow,        ///< task pool: a worker task dies with SimError
    LvptValue,        ///< predictor: XOR one bit into an LVPT MRU value
    LctCounter,       ///< predictor: flip the low bit of an LCT counter
    CvuEntry,         ///< predictor: parity-detected CVU entry eviction
    ServeFrame,       ///< lvp-serve: one socket frame read/write fails
    ServeTornWrite,   ///< lvp-serve: a frame write stops mid-payload
    ServeConnReset,   ///< lvp-serve: the connection is reset mid-frame
    ServeStall,       ///< lvp-serve client: stop sending past the
                      ///< server's idle deadline (slow-peer eviction)
    ServeWorkerKill,  ///< lvp-serve: a supervised worker process dies
    NumPoints,
};

constexpr unsigned NumChaosPoints = static_cast<unsigned>(Point::NumPoints);

const char *pointName(Point p);

constexpr std::uint32_t
pointBit(Point p)
{
    return 1u << static_cast<unsigned>(p);
}

/** Engine faults: I/O and scheduling, recovered by the engine. */
constexpr std::uint32_t EnginePoints =
    pointBit(Point::TraceWriteRecord) | pointBit(Point::TraceWriteFooter) |
    pointBit(Point::TraceReadFlip) | pointBit(Point::CacheRename) |
    pointBit(Point::TaskThrow);

/** Predictor-state faults: must never change architectural results. */
constexpr std::uint32_t PredictorPoints = pointBit(Point::LvptValue) |
                                          pointBit(Point::LctCounter) |
                                          pointBit(Point::CvuEntry);

/**
 * Serving-path faults (socket frame I/O, torn writes, connection
 * resets, client stalls, worker death). Deliberately NOT part of
 * AllPoints: the lvpbench --chaos campaign predates the server and
 * its per-seed reports are a byte-identity contract; the serve soak
 * test and `lvpserve --chaos` / `lvpload --chaos` arm this mask
 * explicitly. New points append after ServeFrame so the decision
 * hash (which mixes the enum value) of every pre-existing point is
 * untouched.
 */
constexpr std::uint32_t ServePoints =
    pointBit(Point::ServeFrame) | pointBit(Point::ServeTornWrite) |
    pointBit(Point::ServeConnReset) | pointBit(Point::ServeStall) |
    pointBit(Point::ServeWorkerKill);

constexpr std::uint32_t AllPoints = EnginePoints | PredictorPoints;

/** What to inject, where, and how often. */
struct ChaosConfig
{
    std::uint64_t seed = 1;
    std::uint32_t points = AllPoints; ///< pointBit() mask of armed sites
    std::uint64_t period = 4096; ///< one fault per this many decisions
};

/**
 * The process-wide injection engine. All methods are thread-safe;
 * enabled() and a disarmed shouldInject() are a single relaxed load.
 */
class ChaosEngine
{
  public:
    /** Fast guard for call sites that do setup work before deciding. */
    bool
    enabled() const
    {
        return armed_.load(std::memory_order_relaxed);
    }

    /** Arm injection with @p cfg (period 0 is clamped to 1). */
    void arm(const ChaosConfig &cfg);

    /** Disarm every injection point. */
    void disarm();

    /** The armed configuration (meaningful while enabled()). */
    ChaosConfig config() const;

    /**
     * Should fault number @p n of stream (@p p, @p streamKey) fire?
     * Counts the fault (injected counters) when it does.
     */
    bool
    shouldInject(Point p, std::uint64_t streamKey, std::uint64_t n)
    {
        if (!armed_.load(std::memory_order_relaxed))
            return false;
        return shouldInjectSlow(p, streamKey, n);
    }

    /**
     * A deterministic 64-bit value for shaping an injected fault
     * (which bit to flip, which entry to evict); independent of the
     * shouldInject() decision hash.
     */
    std::uint64_t faultHash(Point p, std::uint64_t streamKey,
                            std::uint64_t n) const;

    /**
     * Record that a fault (injected or real) was absorbed by a
     * recovery path; publishes chaos.recovered.<site>.
     */
    void recordRecovered(const char *site);

    std::uint64_t injected(Point p) const;
    std::uint64_t injectedTotal() const;
    std::uint64_t recoveredTotal() const;

    /** Zero the injected/recovered counts (obs counters keep going). */
    void resetCounts();

  private:
    bool shouldInjectSlow(Point p, std::uint64_t streamKey,
                          std::uint64_t n);

    std::atomic<bool> armed_{false};
    std::atomic<std::uint64_t> seed_{1};
    std::atomic<std::uint64_t> period_{4096};
    std::atomic<std::uint32_t> points_{AllPoints};

    std::array<std::atomic<std::uint64_t>, NumChaosPoints> injected_{};
    std::atomic<std::uint64_t> recovered_{0};
    /** chaos.injected.<point> mirrors, registered at arm() time. */
    std::array<std::atomic<obs::Counter *>, NumChaosPoints> obsInjected_{};
    mutable std::mutex m_;
};

/** The process-wide engine (Meyers singleton, like Timeline). */
ChaosEngine &engine();

/** Stable stream key for a named site instance (FNV-1a of @p name). */
std::uint64_t streamKey(std::string_view name);

} // namespace lvplib::chaos

#endif // LVPLIB_CHAOS_CHAOS_HH

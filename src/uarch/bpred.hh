/**
 * @file
 * Trace-driven branch prediction: a BHT of 2-bit counters for
 * conditional-branch direction plus a BTB for indirect-branch targets,
 * patterned after the PowerPC 620's BHT/BTAC front end. The timing
 * models use it to decide whether fetch proceeds smoothly or stalls
 * until branch resolution.
 */

#ifndef LVPLIB_UARCH_BPRED_HH
#define LVPLIB_UARCH_BPRED_HH

#include <cstdint>
#include <vector>

#include "trace/trace.hh"
#include "util/sat_counter.hh"
#include "util/types.hh"

namespace lvplib::uarch
{

/** Branch-predictor parameters. */
struct BpredConfig
{
    std::uint32_t bhtEntries = 2048; ///< 2-bit direction counters
    std::uint32_t btbEntries = 256;  ///< indirect-target buffer

    /**
     * Extension: gshare-style two-level prediction (the paper cites
     * Yeh & Patt). When nonzero, this many global-history bits are
     * XORed into the BHT index; 0 gives the 620's plain bimodal BHT.
     */
    std::uint32_t gshareBits = 0;
};

class BranchPredictor
{
  public:
    /**
     * @param bht_entries Direction-predictor entries (2-bit counters).
     * @param btb_entries Target-buffer entries (direct-mapped).
     */
    explicit BranchPredictor(std::uint32_t bht_entries = 2048,
                             std::uint32_t btb_entries = 256);

    /** Construct from a config (supports the gshare extension). */
    explicit BranchPredictor(const BpredConfig &config);

    /**
     * Predict the branch in @p rec, train the predictor with the
     * actual outcome, and report whether the front end predicted
     * correctly (direction AND target).
     */
    bool predict(const trace::TraceRecord &rec);

    std::uint64_t branches() const { return branches_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

    /** Misprediction ratio in percent. */
    double mispredictRate() const;

    void reset();

  private:
    std::uint32_t bhtIndex(Addr pc) const;

    std::uint32_t bhtMask_;
    std::uint32_t btbMask_;
    std::uint32_t gshareBits_ = 0;
    std::uint32_t ghr_ = 0; ///< global direction history
    std::vector<SatCounter> bht_;
    std::vector<Addr> btbTarget_;
    std::vector<bool> btbValid_;
    std::uint64_t branches_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace lvplib::uarch

#endif // LVPLIB_UARCH_BPRED_HH

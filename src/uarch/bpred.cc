#include "uarch/bpred.hh"

#include "isa/program.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace lvplib::uarch
{

BranchPredictor::BranchPredictor(const BpredConfig &config)
    : BranchPredictor(config.bhtEntries, config.btbEntries)
{
    gshareBits_ = config.gshareBits;
}

BranchPredictor::BranchPredictor(std::uint32_t bht_entries,
                                 std::uint32_t btb_entries)
    : bhtMask_(bht_entries - 1), btbMask_(btb_entries - 1)
{
    lvp_assert((bht_entries & (bht_entries - 1)) == 0);
    lvp_assert((btb_entries & (btb_entries - 1)) == 0);
    // Initialize direction counters to weakly-taken so loops warm up
    // quickly, as hardware BHTs commonly do.
    bht_.assign(bht_entries, SatCounter(2, 2));
    btbTarget_.assign(btb_entries, 0);
    btbValid_.assign(btb_entries, false);
}

bool
BranchPredictor::predict(const trace::TraceRecord &rec)
{
    const auto &inst = *rec.inst;
    lvp_assert(inst.branch());
    ++branches_;

    auto word = static_cast<std::uint32_t>(rec.pc /
                                           isa::layout::InstBytes);
    bool correct = true;

    if (isa::isCondBranch(inst.op)) {
        SatCounter &ctr = bht_[bhtIndex(rec.pc)];
        bool pred_taken = ctr.upperHalf();
        correct = (pred_taken == rec.taken);
        if (rec.taken)
            ctr.increment();
        else
            ctr.decrement();
        if (gshareBits_ != 0)
            ghr_ = (ghr_ << 1) | (rec.taken ? 1u : 0u);
    } else if (isa::isIndirectBranch(inst.op)) {
        // Direction is always taken; the target comes from the BTB.
        std::uint32_t idx = word & btbMask_;
        correct = btbValid_[idx] && btbTarget_[idx] == rec.nextPc;
        btbTarget_[idx] = rec.nextPc;
        btbValid_[idx] = true;
    } else {
        // Direct unconditional branches/calls: target known at decode.
        correct = true;
    }

    if (!correct)
        ++mispredicts_;
    return correct;
}

double
BranchPredictor::mispredictRate() const
{
    return pct(mispredicts_, branches_);
}

std::uint32_t
BranchPredictor::bhtIndex(Addr pc) const
{
    auto word = static_cast<std::uint32_t>(pc / isa::layout::InstBytes);
    if (gshareBits_ != 0) {
        std::uint32_t hist = ghr_ & ((1u << gshareBits_) - 1u);
        word ^= hist;
    }
    return word & bhtMask_;
}

void
BranchPredictor::reset()
{
    ghr_ = 0;
    for (auto &c : bht_)
        c.set(2);
    btbValid_.assign(btbValid_.size(), false);
    btbTarget_.assign(btbTarget_.size(), 0);
    branches_ = 0;
    mispredicts_ = 0;
}

} // namespace lvplib::uarch

/**
 * @file
 * Trace-driven timing model of the PowerPC 620 / 620+ (paper Section
 * 4.1): out-of-order issue from per-FU reservation stations, register
 * rename buffers, a 16/32-entry completion buffer with in-order
 * completion, a dual-banked non-blocking L1, store-to-load
 * forwarding, branch prediction, and the LVP Unit's speculative value
 * forwarding with one-cycle verification.
 *
 * LVP semantics modeled (paper Section 4.1):
 *  - predicted loads forward their value to dependents at dispatch;
 *  - dependents may issue speculatively but hold their reservation
 *    stations until the load verifies (one extra cycle of occupancy
 *    even for correct predictions);
 *  - verification takes one cycle beyond the load's actual data
 *    return, so a misprediction costs dependents exactly one cycle of
 *    latency relative to not predicting, plus the structural hazards
 *    of their wasted speculative issue;
 *  - constant loads (CVU hits) never pay a cache-miss penalty, and a
 *    CVU match cancels the miss (no fill, no L2 traffic);
 *  - loads verify via an explicit comparison stage; the verification
 *    latency distribution feeds Figure 7.
 */

#ifndef LVPLIB_UARCH_PPC620_HH
#define LVPLIB_UARCH_PPC620_HH

#include <array>
#include <cstdint>
#include <deque>

#include "mem/hierarchy.hh"
#include "trace/trace.hh"
#include "uarch/bpred.hh"
#include "uarch/machine_config.hh"
#include "uarch/sched.hh"
#include "util/stats.hh"

namespace lvplib::uarch
{

/** Timing statistics for one out-of-order run. */
struct OooStats
{
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;

    /** Figure 7: verification latency (cycles after dispatch) of
     *  correctly-predicted loads. Buckets 0..7, overflow = ">7". */
    Histogram verifyLatency{8};

    /** Figure 8: reservation-station operand-wait cycles per FU. */
    std::array<std::uint64_t, isa::NumFuTypes> rsWaitCycles{};
    std::array<std::uint64_t, isa::NumFuTypes> rsWaitInsts{};

    /** Figure 9: distinct cycles with an L1 bank conflict. */
    std::uint64_t bankConflictCycles = 0;

    std::uint64_t l1Misses = 0;
    std::uint64_t l1Accesses = 0;
    std::uint64_t constMissesAvoided = 0; ///< misses cancelled by the CVU
    std::uint64_t branchMispredicts = 0;
    std::uint64_t predictedLoads = 0;
    std::uint64_t reissuedInsts = 0; ///< consumers redone after mispredict

    double ipc() const;

    /** Mean RS wait for one FU type, in cycles. */
    double rsWaitMean(isa::FuType t) const;

    /** Bank-conflict cycles as a percentage of all cycles. */
    double bankConflictPct() const;
};

/** The out-of-order machine model; consumes an annotated trace. */
class Ppc620Model : public trace::TraceSink
{
  public:
    /**
     * @param config 620 or 620+ parameters.
     * @param lvp_enabled When false, load-prediction annotations in
     * the trace are ignored (the baseline machine).
     */
    Ppc620Model(const Ppc620Config &config, bool lvp_enabled);

    void consume(const trace::TraceRecord &rec) override;

    void
    consumeBatch(std::span<const trace::TraceRecord> recs) override
    {
        // Qualified call: one virtual dispatch per batch, not per
        // record.
        for (const trace::TraceRecord &rec : recs)
            Ppc620Model::consume(rec);
    }

    void finish() override;

    const OooStats &stats() const { return stats_; }
    const Ppc620Config &config() const { return config_; }

  private:
    /** Per-register producer timing, the OoO dependence scoreboard. */
    struct RegInfo
    {
        Cycle early = 0;  ///< first (possibly speculative) value
        Cycle good = 0;   ///< first correct value
        Cycle verify = 0; ///< pending verification time (0 = none)
    };

    struct StoreEntry
    {
        Addr addr;
        unsigned size;
        Cycle ready; ///< cycle its data can forward to a younger load
    };

    Cycle fetchCycle();
    Cycle dispatchCycle(const isa::Instruction &inst, Cycle fetch);
    Cycle completeCycle(Cycle eligible, Cycle dispatch);
    Cycle loadDataReturn(const trace::TraceRecord &rec, Cycle issue,
                         trace::PredState pred);

    Ppc620Config config_;
    bool lvp_;
    mem::MemHierarchy mem_;
    BranchPredictor bpred_;
    std::array<FuBank, isa::NumFuTypes> fus_;
    std::array<ResourcePool, isa::NumFuTypes> rsPools_;
    ResourcePool gprRename_;
    ResourcePool fprRename_;
    ResourcePool completionBuf_;
    BankTracker banks_;

    // Front end.
    Cycle nextFetch_ = 0;
    unsigned fetchCount_ = 0;
    std::deque<Cycle> fetchBufDispatch_; ///< dispatch cycles, buffer-sized

    // Dispatch / completion bandwidth.
    SlotCounter dispatchSlots_;
    SlotCounter memDispatchSlots_;
    SlotCounter completeSlots_;
    Cycle lastDispatch_ = 0;
    Cycle lastComplete_ = 0;

    // Dependence tracking.
    std::array<RegInfo, isa::NumRegs> regs_{};
    std::deque<StoreEntry> storeQueue_;

    // Outstanding-miss (MSHR) end times.
    std::deque<Cycle> missEnds_;

    OooStats stats_;
};

} // namespace lvplib::uarch

#endif // LVPLIB_UARCH_PPC620_HH

/**
 * @file
 * Trace-driven timing model of the Alpha AXP 21164 (paper Section
 * 4.2): a 4-wide, strictly in-order, deeply pipelined machine with
 * two integer pipes (which serve as the two memory ports of the
 * dual-ported L1) and two floating-point pipes.
 *
 * Deviations from the real 21164, exactly as the paper made them:
 *  - the MAF is omitted, so L1 misses block subsequent memory ops
 *    (baseline and LVP configurations alike);
 *  - LVP configurations add a compare stage and a reissue buffer:
 *    a misprediction squashes the (up to 8) in-flight instructions
 *    and redispatches them with a single-cycle penalty;
 *  - loads that miss the L1 cannot be predicted (the machine returns
 *    to the non-speculative state with no penalty), EXCEPT constants
 *    verified by the CVU, which complete without accessing the cache
 *    at all — a zero-cycle load even on what would have been a miss.
 */

#ifndef LVPLIB_UARCH_ALPHA21164_HH
#define LVPLIB_UARCH_ALPHA21164_HH

#include <array>
#include <cstdint>

#include "mem/hierarchy.hh"
#include "trace/trace.hh"
#include "uarch/bpred.hh"
#include "uarch/machine_config.hh"
#include "uarch/sched.hh"
#include "util/stats.hh"

namespace lvplib::uarch
{

/** Timing statistics for one in-order run. */
struct InOrderStats
{
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t predictedLoads = 0; ///< predictions actually used
    std::uint64_t droppedPredictions = 0; ///< abandoned due to L1 miss
    std::uint64_t constLoads = 0;     ///< completed via the CVU
    std::uint64_t squashes = 0;       ///< misprediction squashes
    std::uint64_t branchMispredicts = 0;

    double ipc() const;

    /** L1 misses per instruction, in percent (paper Section 6.1). */
    double missRatePerInst() const;
};

/** The in-order machine model; consumes an annotated trace. */
class Alpha21164Model : public trace::TraceSink
{
  public:
    Alpha21164Model(const AlphaConfig &config, bool lvp_enabled);

    void consume(const trace::TraceRecord &rec) override;

    void
    consumeBatch(std::span<const trace::TraceRecord> recs) override
    {
        // Qualified call: one virtual dispatch per batch, not per
        // record.
        for (const trace::TraceRecord &rec : recs)
            Alpha21164Model::consume(rec);
    }

    void finish() override;

    const InOrderStats &stats() const { return stats_; }
    const AlphaConfig &config() const { return config_; }

  private:
    AlphaConfig config_;
    bool lvp_;
    mem::MemHierarchy mem_;
    BranchPredictor bpred_;
    FuBank intPipes_;
    FuBank fpPipes_;
    SlotCounter dispatchSlots_;

    /** Cycle each register's value is available to a dispatcher. */
    std::array<Cycle, isa::NumRegs> regReady_{};

    Cycle lastDispatch_ = 0;
    Cycle cacheBusyUntil_ = 0; ///< blocking-miss fill in progress
    Cycle stallUntil_ = 0;     ///< squash/branch redirect barrier

    InOrderStats stats_;
};

} // namespace lvplib::uarch

#endif // LVPLIB_UARCH_ALPHA21164_HH

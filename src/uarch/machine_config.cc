#include "uarch/machine_config.hh"

namespace lvplib::uarch
{

Ppc620Config
Ppc620Config::base620()
{
    return Ppc620Config();
}

Ppc620Config
Ppc620Config::plus620()
{
    Ppc620Config c;
    c.name = "620+";
    c.rsPerUnit = 4;
    c.gprRename = 16;
    c.fprRename = 16;
    c.completionEntries = 32;
    c.numLsu = 2;
    c.memOpsPerCycle = 2;
    return c;
}

AlphaConfig
AlphaConfig::base21164()
{
    return AlphaConfig();
}

} // namespace lvplib::uarch

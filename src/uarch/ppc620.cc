#include "uarch/ppc620.hh"

#include <algorithm>

#include "isa/latency.hh"
#include "util/logging.hh"

namespace lvplib::uarch
{

using isa::FuType;
using isa::Instruction;
using isa::MachineIsa;
using trace::PredState;

double
OooStats::ipc() const
{
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
}

double
OooStats::rsWaitMean(FuType t) const
{
    auto i = static_cast<std::size_t>(t);
    return rsWaitInsts[i] == 0
               ? 0.0
               : static_cast<double>(rsWaitCycles[i]) /
                     static_cast<double>(rsWaitInsts[i]);
}

double
OooStats::bankConflictPct() const
{
    return pct(bankConflictCycles, cycles);
}

namespace
{

unsigned
unitCount(const Ppc620Config &c, FuType t)
{
    switch (t) {
      case FuType::SCFX: return c.numScfx;
      case FuType::MCFX: return c.numMcfx;
      case FuType::FPU: return c.numFpu;
      case FuType::LSU: return c.numLsu;
      case FuType::BRU: return c.numBru;
    }
    return 1;
}

} // namespace

Ppc620Model::Ppc620Model(const Ppc620Config &config, bool lvp_enabled)
    : config_(config), lvp_(lvp_enabled), mem_(config.mem),
      bpred_(config.bpred),
      fus_{FuBank(unitCount(config, FuType::SCFX)),
           FuBank(unitCount(config, FuType::MCFX)),
           FuBank(unitCount(config, FuType::FPU)),
           FuBank(unitCount(config, FuType::LSU)),
           FuBank(unitCount(config, FuType::BRU))},
      rsPools_{ResourcePool(config.rsPerUnit *
                            unitCount(config, FuType::SCFX)),
               ResourcePool(config.rsPerUnit *
                            unitCount(config, FuType::MCFX)),
               ResourcePool(config.rsPerUnit *
                            unitCount(config, FuType::FPU)),
               ResourcePool(config.rsPerUnit *
                            unitCount(config, FuType::LSU)),
               ResourcePool(config.rsPerUnit *
                            unitCount(config, FuType::BRU))},
      gprRename_(config.gprRename), fprRename_(config.fprRename),
      completionBuf_(config.completionEntries),
      banks_(config.mem.banks),
      dispatchSlots_(config.dispatchWidth),
      memDispatchSlots_(config.memOpsPerCycle),
      completeSlots_(config.completeWidth)
{}

Cycle
Ppc620Model::fetchCycle()
{
    // A fetch-buffer entry frees when the instruction occupying it
    // dispatches.
    Cycle buf_free = 0;
    if (fetchBufDispatch_.size() >= config_.fetchBuffer)
        buf_free = fetchBufDispatch_.front();

    Cycle f = std::max(nextFetch_, buf_free);
    if (f > nextFetch_) {
        nextFetch_ = f;
        fetchCount_ = 0;
    }
    Cycle cycle = nextFetch_;
    if (++fetchCount_ >= config_.fetchWidth) {
        ++nextFetch_;
        fetchCount_ = 0;
    }
    return cycle;
}

Cycle
Ppc620Model::dispatchCycle(const Instruction &inst, Cycle fetch)
{
    FuType fu = inst.fu();
    Cycle d = std::max({fetch + 1, lastDispatch_,
                        rsPools_[static_cast<std::size_t>(fu)]
                            .earliestAvailable(),
                        completionBuf_.earliestAvailable()});

    RegIndex dest = inst.destReg();
    if (dest != isa::NoReg) {
        if (dest < isa::NumGpr)
            d = std::max(d, gprRename_.earliestAvailable());
        else if (isa::isFpr(dest))
            d = std::max(d, fprRename_.earliestAvailable());
    }

    // Per-cycle bandwidth: dispatch width, plus the load/store
    // dispatch limit (one per cycle on the 620, two on the 620+).
    for (;;) {
        Cycle d2 = dispatchSlots_.earliest(d);
        if (inst.memRef())
            d2 = std::max(d2, memDispatchSlots_.earliest(d2));
        if (d2 == d)
            break;
        d = d2;
    }
    dispatchSlots_.claim(d);
    if (inst.memRef())
        memDispatchSlots_.claim(d);
    lastDispatch_ = d;

    fetchBufDispatch_.push_back(d);
    if (fetchBufDispatch_.size() > config_.fetchBuffer)
        fetchBufDispatch_.pop_front();
    return d;
}

Cycle
Ppc620Model::completeCycle(Cycle eligible, Cycle dispatch)
{
    Cycle c = std::max({eligible, lastComplete_, dispatch + 1});
    c = completeSlots_.earliest(c);
    completeSlots_.claim(c);
    lastComplete_ = c;
    return c;
}

Cycle
Ppc620Model::loadDataReturn(const trace::TraceRecord &rec, Cycle issue,
                            PredState pred)
{
    // Address generation in EX1 (the issue cycle); the cache is
    // accessed the following cycle; data returns the cycle after a
    // hit (2-cycle load-use latency, paper Table 5).
    Cycle access = issue + 1;

    if (pred == PredState::Constant) {
        // CVU hit: the access proceeds in parallel with the CAM
        // search, but a miss or a bank conflict cancels it outright
        // (no retry, no fill) — the value never needs the memory
        // hierarchy.
        if (banks_.tryBookLoad(access, mem_.bank(rec.effAddr))) {
            bool hit = mem_.touchIfPresent(rec.effAddr);
            ++stats_.l1Accesses;
            if (!hit)
                ++stats_.constMissesAvoided;
        }
        return access + 1;
    }

    mem::AccessResult ar = mem_.access(rec.effAddr);
    ++stats_.l1Accesses;
    access = banks_.bookLoad(access, ar.bank);
    Cycle ret = access + 1;

    if (!ar.l1Hit) {
        ++stats_.l1Misses;
        ret += ar.extraLatency;
        // Non-blocking cache: bounded outstanding misses (MSHRs).
        while (!missEnds_.empty() && missEnds_.front() <= access)
            missEnds_.pop_front();
        if (missEnds_.size() >= config_.mshrs) {
            Cycle wait = missEnds_.front();
            ret += wait > access ? wait - access : 0;
            missEnds_.pop_front();
        }
        missEnds_.push_back(ret);
        std::sort(missEnds_.begin(), missEnds_.end());
    }

    // Store-to-load forwarding: a younger load of bytes written by an
    // in-flight older store gets the data once the store's data is
    // ready.
    const Addr loadEnd = rec.effAddr + rec.inst->accessSize();
    for (const auto &st : storeQueue_) {
        if (st.addr < loadEnd && rec.effAddr < st.addr + st.size) {
            ret = std::max(ret, st.ready + 1);
        }
    }
    return ret;
}

void
Ppc620Model::consume(const trace::TraceRecord &rec)
{
    const Instruction &inst = *rec.inst;
    const FuType fu = inst.fu();
    const auto fu_idx = static_cast<std::size_t>(fu);
    const isa::OpLatency lat = isa::opLatency(MachineIsa::Ppc620, inst.op);

    ++stats_.instructions;

    Cycle fetch = fetchCycle();
    Cycle d = dispatchCycle(inst, fetch);

    // Operand readiness from the scoreboard.
    Cycle spec_ready = 0;  // earliest (possibly speculative) operands
    Cycle good_ready = 0;  // earliest correct operands
    Cycle src_verify = 0;  // latest pending verification among sources
    for (RegIndex s : inst.srcRegs()) {
        if (s == isa::NoReg)
            continue;
        const RegInfo &ri = regs_[s];
        spec_ready = std::max(spec_ready, ri.early);
        good_ready = std::max(good_ready, ri.good);
        src_verify = std::max(src_verify, ri.verify);
    }

    Cycle eligible = 0;   // earliest completion
    Cycle rs_free = 0;
    RegInfo out;          // timing of this instruction's result

    if (inst.load()) {
        ++stats_.loads;
        PredState pred = lvp_ ? rec.pred : PredState::None;
        if (pred != PredState::None)
            ++stats_.predictedLoads;

        // Address generation uses the correct base value.
        Cycle issue = fus_[fu_idx].book(std::max(d + 1, good_ready),
                                        lat.issue);
        stats_.rsWaitCycles[fu_idx] += issue - (d + 1);
        ++stats_.rsWaitInsts[fu_idx];

        Cycle ret = loadDataReturn(rec, issue, pred);
        Cycle verify = 0;

        switch (pred) {
          case PredState::None:
            out.early = out.good = ret;
            eligible = ret;
            break;
          case PredState::Constant:
            // Value forwarded at dispatch; the CVU CAM search (in
            // parallel with the cache access) is the verification.
            out.early = out.good = d + 1;
            verify = issue + 2;
            eligible = verify;
            break;
          case PredState::Correct:
            out.early = out.good = d + 1;
            verify = ret + 1; // comparison takes one extra cycle
            // The load itself is non-speculative once the actual
            // value returns; only its DEPENDENTS wait for the
            // comparison (paper Section 4.1: a correct prediction
            // costs structural effects, not latency).
            eligible = ret;
            break;
          case PredState::Incorrect:
            out.early = d + 1;   // bogus value forwarded at dispatch
            verify = ret + 1;
            out.good = verify;   // corrected value at verification
            eligible = verify;
            if (config_.squashOnValueMispredict) {
                // Ablation: recover like a branch mispredict —
                // refetch everything younger than the load once the
                // verification flags the mismatch.
                if (verify + 1 > nextFetch_) {
                    nextFetch_ = verify + 1;
                    fetchCount_ = 0;
                }
            }
            break;
        }

        if (pred == PredState::Correct || pred == PredState::Constant)
            stats_.verifyLatency.record(verify - d);

        // Propagate any still-pending verification from sources. A
        // consumer that issues once the actual value is back runs "in
        // parallel with the value comparison" (paper Section 4.1) and
        // pays no penalty, hence the +1 in the binding test.
        out.verify = std::max(
            verify, src_verify > issue + 1 ? src_verify : 0);
        rs_free = std::max(issue + lat.issue,
                           src_verify > issue + 1 ? src_verify : 0);
    } else if (inst.store()) {
        ++stats_.stores;
        // Address generation at issue; data needed by completion.
        Cycle addr_ready = inst.rs1 == 0 ? 0 : regs_[inst.rs1].good;
        Cycle data_ready = inst.rs2 == 0 ? 0 : regs_[inst.rs2].good;
        Cycle issue = fus_[fu_idx].book(std::max(d + 1, addr_ready),
                                        lat.issue);
        stats_.rsWaitCycles[fu_idx] += issue - (d + 1);
        ++stats_.rsWaitInsts[fu_idx];

        Cycle bound_verify = src_verify > issue + 1 ? src_verify : 0;
        eligible = std::max({issue + 1, data_ready, bound_verify});
        rs_free = std::max(issue + lat.issue, bound_verify);

        storeQueue_.push_back({rec.effAddr, inst.accessSize(),
                               std::max(issue, data_ready)});
        if (storeQueue_.size() > 64)
            storeQueue_.pop_front();
    } else {
        // ALU / branch: may issue speculatively on forwarded values.
        Cycle issue_spec = fus_[fu_idx].book(std::max(d + 1, spec_ready),
                                             lat.issue);
        stats_.rsWaitCycles[fu_idx] += issue_spec - (d + 1);
        ++stats_.rsWaitInsts[fu_idx];

        Cycle final_issue = issue_spec;
        out.early = issue_spec + lat.result;
        if (good_ready > issue_spec) {
            // Issued with a value that later proved wrong: reissue
            // once correct operands exist (structural hazard: the FU
            // and RS were occupied twice).
            final_issue = fus_[fu_idx].book(std::max(d + 1, good_ready),
                                            lat.issue);
            out.good = final_issue + lat.result;
            ++stats_.reissuedInsts;
        } else {
            out.good = out.early;
        }

        // The verification tag binds only when this instruction truly
        // consumed a speculative value (it issued before the actual
        // value existed; issuing in parallel with the comparison is
        // penalty-free, paper Section 4.1).
        out.verify = src_verify > final_issue + 1 ? src_verify : 0;
        eligible = std::max(out.good, out.verify);
        rs_free = std::max(final_issue + lat.issue, out.verify);

        if (inst.branch()) {
            Cycle resolve = out.good;
            bool correct = bpred_.predict(rec);
            if (!correct) {
                ++stats_.branchMispredicts;
                Cycle redirect =
                    resolve + isa::mispredictPenalty(MachineIsa::Ppc620);
                if (redirect > nextFetch_) {
                    nextFetch_ = redirect;
                    fetchCount_ = 0;
                }
            } else if (rec.taken) {
                // A predicted-taken branch ends the fetch group.
                if (fetchCount_ != 0) {
                    ++nextFetch_;
                    fetchCount_ = 0;
                }
            }
        }
    }

    Cycle complete = completeCycle(eligible, d);

    // Stores access the cache at completion and must win a bank.
    if (inst.store()) {
        mem::AccessResult ar = mem_.access(rec.effAddr);
        ++stats_.l1Accesses;
        if (!ar.l1Hit)
            ++stats_.l1Misses;
        banks_.bookStore(complete, ar.bank);
    }

    // Claim window resources with their now-known release times.
    rsPools_[fu_idx].claim(std::max(rs_free, d + 1));
    completionBuf_.claim(complete + 1);
    RegIndex dest = inst.destReg();
    if (dest != isa::NoReg) {
        if (dest < isa::NumGpr)
            gprRename_.claim(complete + 1);
        else if (isa::isFpr(dest))
            fprRename_.claim(complete + 1);
        regs_[dest] = out;
    }

    stats_.cycles = std::max(stats_.cycles, complete);
    stats_.bankConflictCycles = banks_.conflictCycles();
}

void
Ppc620Model::finish()
{
    stats_.bankConflictCycles = banks_.conflictCycles();
}

} // namespace lvplib::uarch

/**
 * @file
 * Machine-model configurations: the PowerPC 620, the paper's enhanced
 * 620+ (Section 4.1), and the Alpha AXP 21164 (Section 4.2).
 */

#ifndef LVPLIB_UARCH_MACHINE_CONFIG_HH
#define LVPLIB_UARCH_MACHINE_CONFIG_HH

#include <string>

#include "mem/hierarchy.hh"
#include "uarch/bpred.hh"

namespace lvplib::uarch
{

/**
 * Out-of-order machine parameters (PowerPC 620 family).
 *
 * The 620+ "differs from the 620 by doubling the number of reservation
 * stations, FPR and GPR rename buffers, and completion buffer entries;
 * adding an additional load/store unit without an additional cache
 * port; and relaxing dispatching requirements to allow up to two loads
 * or stores to dispatch and issue per cycle."
 */
struct Ppc620Config
{
    std::string name = "620";
    unsigned fetchWidth = 4;
    unsigned fetchBuffer = 8;
    unsigned dispatchWidth = 4;
    unsigned completeWidth = 4;
    unsigned rsPerUnit = 2;      ///< reservation stations per FU
    unsigned gprRename = 8;
    unsigned fprRename = 8;
    unsigned completionEntries = 16;
    unsigned numScfx = 2;
    unsigned numMcfx = 1;
    unsigned numFpu = 1;
    unsigned numLsu = 1;
    unsigned numBru = 1;
    unsigned memOpsPerCycle = 1; ///< loads/stores dispatched per cycle
    unsigned mshrs = 4;          ///< outstanding non-blocking misses
    mem::HierarchyConfig mem = mem::HierarchyConfig::ppc620();
    BpredConfig bpred;           ///< front-end branch prediction

    /**
     * Ablation knob for value-misprediction recovery. The paper's 620
     * selectively reissues only the dependents of a mispredicted load
     * (false, the default); true instead squashes and refetches
     * everything younger than the load, like a branch mispredict —
     * the simpler hardware many later proposals assumed.
     */
    bool squashOnValueMispredict = false;

    /** The baseline PowerPC 620. */
    static Ppc620Config base620();

    /** The paper's aggressive next-generation 620+. */
    static Ppc620Config plus620();
};

/**
 * In-order machine parameters (Alpha AXP 21164 per Section 4.2: MAF
 * omitted, so L1 misses block; an extra compare stage and a reissue
 * buffer exist only in LVP configurations).
 */
struct AlphaConfig
{
    std::string name = "21164";
    unsigned width = 4;        ///< dispatch width
    unsigned intPipes = 2;     ///< integer pipes (also the 2 mem ports)
    unsigned fpPipes = 2;
    unsigned inflight = 8;     ///< squash window: two dispatch groups
    mem::HierarchyConfig mem = mem::HierarchyConfig::alpha21164();
    BpredConfig bpred;         ///< front-end branch prediction

    static AlphaConfig base21164();
};

} // namespace lvplib::uarch

#endif // LVPLIB_UARCH_MACHINE_CONFIG_HH

/**
 * @file
 * Scheduling primitives shared by the timing models:
 *
 *  - FuPipe / FuBank: functional-unit occupancy with gap-filling
 *    booking (out-of-order issue can slot a younger ready instruction
 *    into an idle cycle before an older stalled one);
 *  - ResourcePool: bounded resources freed at known future cycles
 *    (reservation stations, rename buffers, completion buffer);
 *  - SlotCounter: per-cycle bandwidth limits (dispatch width,
 *    completion width, memory ops per cycle);
 *  - BankTracker: L1 bank occupancy and conflict-cycle accounting.
 */

#ifndef LVPLIB_UARCH_SCHED_HH
#define LVPLIB_UARCH_SCHED_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/logging.hh"
#include "util/types.hh"

namespace lvplib::uarch
{

/**
 * Busy-interval calendar for one functional-unit instance.
 *
 * Intervals live in a vector sorted by start cycle. Issue cycles are
 * almost always non-decreasing, so book() nearly always appends —
 * no per-booking node allocation, and lookups are a binary search
 * over a short contiguous array (the calendar is pruned to a sliding
 * window by the owning FuBank).
 */
class FuPipe
{
  public:
    /** Earliest start >= @p t where the pipe is idle for @p dur
     *  cycles, without booking it. */
    Cycle
    earliest(Cycle t, unsigned dur) const
    {
        Cycle cand = t;
        auto it = upperBound(cand);
        if (it != busy_.begin()) {
            auto prev = std::prev(it);
            if (prev->second > cand)
                cand = prev->second;
        }
        while (it != busy_.end() && it->first < cand + dur) {
            cand = it->second;
            ++it;
        }
        return cand;
    }

    /** Book [start, start+dur). Caller got @p start from earliest(). */
    void
    book(Cycle start, unsigned dur)
    {
        if (busy_.empty() || busy_.back().first < start) {
            busy_.emplace_back(start, start + dur);
            return;
        }
        busy_.insert(upperBound(start), {start, start + dur});
    }

    /** Drop intervals ending at or before @p before. */
    void
    prune(Cycle before)
    {
        auto it = busy_.begin();
        while (it != busy_.end() && it->second <= before)
            ++it;
        busy_.erase(busy_.begin(), it);
    }

  private:
    using Interval = std::pair<Cycle, Cycle>;

    /** First interval whose start is > @p t. */
    std::vector<Interval>::const_iterator
    upperBound(Cycle t) const
    {
        return std::upper_bound(
            busy_.begin(), busy_.end(), t,
            [](Cycle c, const Interval &iv) { return c < iv.first; });
    }

    std::vector<Interval>::iterator
    upperBound(Cycle t)
    {
        return std::upper_bound(
            busy_.begin(), busy_.end(), t,
            [](Cycle c, const Interval &iv) { return c < iv.first; });
    }

    std::vector<Interval> busy_;
};

/** A pool of identical FU instances (e.g. the 620's two SCFX units). */
class FuBank
{
  public:
    explicit FuBank(unsigned instances = 1) : pipes_(instances) {}

    /** Book the earliest available instance at or after @p t for
     *  @p dur cycles; returns the booked start cycle. */
    Cycle
    book(Cycle t, unsigned dur)
    {
        std::size_t best = 0;
        Cycle best_start = pipes_[0].earliest(t, dur);
        for (std::size_t i = 1; i < pipes_.size(); ++i) {
            Cycle s = pipes_[i].earliest(t, dur);
            if (s < best_start) {
                best_start = s;
                best = i;
            }
        }
        pipes_[best].book(best_start, dur);
        maybePrune(t);
        return best_start;
    }

    /** Earliest start >= @p t across instances, without booking. */
    Cycle
    earliestAvailable(Cycle t, unsigned dur) const
    {
        Cycle best = pipes_[0].earliest(t, dur);
        for (std::size_t i = 1; i < pipes_.size(); ++i)
            best = std::min(best, pipes_[i].earliest(t, dur));
        return best;
    }

    /**
     * Book an instance at exactly @p t (an in-order machine cannot
     * slide the booking). @p t must come from earliestAvailable().
     */
    void
    bookAt(Cycle t, unsigned dur)
    {
        for (auto &p : pipes_) {
            if (p.earliest(t, dur) == t) {
                p.book(t, dur);
                maybePrune(t);
                return;
            }
        }
        lvp_panic("bookAt: no instance free at the requested cycle");
    }

  private:
    void
    maybePrune(Cycle t)
    {
        if (++opsSincePrune_ >= 4096) {
            opsSincePrune_ = 0;
            for (auto &p : pipes_)
                p.prune(t > 512 ? t - 512 : 0);
        }
    }

    std::vector<FuPipe> pipes_;
    unsigned opsSincePrune_ = 0;
};

/**
 * A resource with @p capacity units, each claimed until a known
 * release cycle. earliestAvailable() is the first cycle a new claim
 * can coexist with previous ones. Only the largest @p capacity
 * release times can constrain, so older ones are discarded — the
 * live set is a bounded min-heap over a flat vector (no per-claim
 * node allocation; the heap never exceeds @p capacity entries).
 */
class ResourcePool
{
  public:
    explicit ResourcePool(unsigned capacity) : cap_(capacity)
    {
        releases_.reserve(capacity);
    }

    Cycle
    earliestAvailable() const
    {
        if (cap_ == 0)
            return 0; // treated as unlimited
        return releases_.size() < cap_ ? 0 : releases_.front();
    }

    void
    claim(Cycle release)
    {
        if (cap_ == 0)
            return;
        if (releases_.size() < cap_) {
            releases_.push_back(release);
            std::push_heap(releases_.begin(), releases_.end(), cmp_);
            return;
        }
        // Full: the new release replaces the smallest kept one (which
        // can no longer constrain anything) unless it is itself the
        // smallest.
        if (release <= releases_.front())
            return;
        std::pop_heap(releases_.begin(), releases_.end(), cmp_);
        releases_.back() = release;
        std::push_heap(releases_.begin(), releases_.end(), cmp_);
    }

    unsigned capacity() const { return cap_; }

  private:
    // Min-heap: the root is the smallest kept release time.
    static constexpr auto cmp_ = [](Cycle a, Cycle b) { return a > b; };

    unsigned cap_;
    std::vector<Cycle> releases_;
};

/** Enforces at most @p width events per cycle, non-decreasing. */
class SlotCounter
{
  public:
    explicit SlotCounter(unsigned width) : width_(width) {}

    /** First cycle >= @p t with a free slot (without claiming). */
    Cycle
    earliest(Cycle t) const
    {
        if (t > cycle_)
            return t;
        return count_ < width_ ? cycle_ : cycle_ + 1;
    }

    /** Claim a slot at @p t; @p t must be >= earliest(t). */
    void
    claim(Cycle t)
    {
        lvp_assert(t >= cycle_, "slot claim in the past");
        if (t > cycle_) {
            cycle_ = t;
            count_ = 1;
        } else {
            ++count_;
            lvp_assert(count_ <= width_, "slot overflow");
        }
    }

    Cycle cycle() const { return cycle_; }

  private:
    unsigned width_;
    Cycle cycle_ = 0;
    unsigned count_ = 0;
};

/**
 * L1 bank occupancy: one access per bank per cycle, loads have
 * priority, stores retry on conflict. Tracks the number of distinct
 * cycles in which at least one conflict occurred (paper Figure 9).
 * Ring-buffered: assumes bookings stay within the horizon of the most
 * recent cycle seen, which holds for bounded-window pipelines.
 */
class BankTracker
{
  public:
    explicit BankTracker(unsigned banks, std::size_t horizon = 16384)
        : banks_(banks), horizon_(horizon),
          slots_(banks * horizon), stamp_(banks * horizon, NoCycle),
          conflictStamp_(horizon, NoCycle)
    {}

    /**
     * Book a load access at the first cycle >= @p t where @p bank has
     * no load yet. A delay counts as a conflict in the cycle where the
     * load was blocked.
     */
    Cycle
    bookLoad(Cycle t, unsigned bank)
    {
        Cycle c = t;
        while (loadBusy(c, bank)) {
            markConflict(c);
            ++c;
        }
        setLoad(c, bank);
        return c;
    }

    /**
     * Try to book a load access at exactly cycle @p t: succeeds and
     * books when the bank is free of loads, otherwise does nothing.
     * Used for CVU-verified constant loads, whose access is cancelled
     * rather than retried when it would conflict (paper Section 3.4).
     */
    bool
    tryBookLoad(Cycle t, unsigned bank)
    {
        if (loadBusy(t, bank))
            return false;
        setLoad(t, bank);
        return true;
    }

    /**
     * Book a store access at the first cycle >= @p t where @p bank is
     * completely free; each blocked cycle is a conflict cycle.
     */
    Cycle
    bookStore(Cycle t, unsigned bank)
    {
        Cycle c = t;
        while (busy(c, bank)) {
            markConflict(c);
            ++c;
        }
        setStore(c, bank);
        return c;
    }

    /** Distinct cycles in which at least one conflict occurred. */
    std::uint64_t conflictCycles() const { return conflictCycles_; }

    unsigned banks() const { return banks_; }

  private:
    static constexpr Cycle NoCycle = ~Cycle(0);
    static constexpr std::uint8_t LoadBit = 1;
    static constexpr std::uint8_t StoreBit = 2;

    std::size_t
    slot(Cycle c, unsigned bank) const
    {
        return (c % horizon_) * banks_ + bank;
    }

    std::uint8_t
    flags(Cycle c, unsigned bank) const
    {
        std::size_t s = slot(c, bank);
        return stamp_[s] == c ? slots_[s] : 0;
    }

    void
    orFlags(Cycle c, unsigned bank, std::uint8_t bits)
    {
        std::size_t s = slot(c, bank);
        if (stamp_[s] != c) {
            stamp_[s] = c;
            slots_[s] = 0;
        }
        slots_[s] |= bits;
    }

    bool loadBusy(Cycle c, unsigned b) const
    {
        return (flags(c, b) & LoadBit) != 0;
    }
    bool busy(Cycle c, unsigned b) const { return flags(c, b) != 0; }
    void setLoad(Cycle c, unsigned b) { orFlags(c, b, LoadBit); }
    void setStore(Cycle c, unsigned b) { orFlags(c, b, StoreBit); }

    void
    markConflict(Cycle c)
    {
        std::size_t s = c % horizon_;
        if (conflictStamp_[s] != c) {
            conflictStamp_[s] = c;
            ++conflictCycles_;
        }
    }

    unsigned banks_;
    std::size_t horizon_;
    std::vector<std::uint8_t> slots_;
    std::vector<Cycle> stamp_;
    std::vector<Cycle> conflictStamp_;
    std::uint64_t conflictCycles_ = 0;
};

} // namespace lvplib::uarch

#endif // LVPLIB_UARCH_SCHED_HH

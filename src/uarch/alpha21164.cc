#include "uarch/alpha21164.hh"

#include <algorithm>

#include "isa/latency.hh"

namespace lvplib::uarch
{

using isa::FuType;
using isa::Instruction;
using isa::MachineIsa;
using trace::PredState;

double
InOrderStats::ipc() const
{
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
}

double
InOrderStats::missRatePerInst() const
{
    return pct(l1Misses, instructions);
}

Alpha21164Model::Alpha21164Model(const AlphaConfig &config,
                                 bool lvp_enabled)
    : config_(config), lvp_(lvp_enabled), mem_(config.mem),
      bpred_(config.bpred), intPipes_(config.intPipes),
      fpPipes_(config.fpPipes),
      dispatchSlots_(config.width)
{}

void
Alpha21164Model::consume(const trace::TraceRecord &rec)
{
    const Instruction &inst = *rec.inst;
    const isa::OpLatency lat =
        isa::opLatency(MachineIsa::Alpha21164, inst.op);
    const bool fp = inst.fu() == FuType::FPU;

    ++stats_.instructions;

    // ---- dispatch: strictly in-order, stall until everything is
    // ready (the 21164 cannot stall past dispatch) -------------------
    Cycle d = std::max({lastDispatch_, stallUntil_});

    // Source operands must be available (full bypassing assumed).
    for (RegIndex s : inst.srcRegs()) {
        if (s != isa::NoReg)
            d = std::max(d, regReady_[s]);
    }

    // Memory ops wait for a blocking miss in progress (no MAF).
    if (inst.memRef())
        d = std::max(d, cacheBusyUntil_);

    // Pipe and dispatch-slot availability.
    FuBank &pipes = fp ? fpPipes_ : intPipes_;
    for (;;) {
        Cycle d2 = std::max(dispatchSlots_.earliest(d),
                            pipes.earliestAvailable(d, lat.issue));
        if (d2 == d)
            break;
        d = d2;
    }
    dispatchSlots_.claim(d);
    pipes.bookAt(d, lat.issue);
    lastDispatch_ = d;

    // ---- execute ----------------------------------------------------
    if (inst.load()) {
        ++stats_.loads;
        PredState pred = lvp_ ? rec.pred : PredState::None;

        if (pred == PredState::Constant) {
            // CVU-verified constant: completes without touching the
            // cache; zero-cycle load even across would-be misses.
            ++stats_.constLoads;
            ++stats_.predictedLoads;
            if (inst.destReg() != isa::NoReg)
                regReady_[inst.destReg()] = d; // value known at dispatch
        } else {
            mem::AccessResult ar = mem_.access(rec.effAddr);
            ++stats_.l1Accesses;
            Cycle ret = d + lat.result + ar.extraLatency;
            if (!ar.l1Hit) {
                ++stats_.l1Misses;
                cacheBusyUntil_ = ret; // blocking fill
                if (pred != PredState::None)
                    ++stats_.droppedPredictions; // no penalty (paper)
                if (inst.destReg() != isa::NoReg)
                    regReady_[inst.destReg()] = ret;
            } else if (pred == PredState::Correct) {
                ++stats_.predictedLoads;
                // Zero-cycle load: dependents use the value at once.
                if (inst.destReg() != isa::NoReg)
                    regReady_[inst.destReg()] = d;
            } else if (pred == PredState::Incorrect) {
                ++stats_.predictedLoads;
                ++stats_.squashes;
                // The compare stage flags the mismatch one cycle
                // after data return (the "single-cycle penalty": the
                // reissue buffer redispatches the squashed group at
                // the verify cycle, one cycle later than an
                // unpredicted load's consumers would have gone).
                Cycle verify = ret + 1;
                stallUntil_ = std::max(stallUntil_, verify);
                if (inst.destReg() != isa::NoReg)
                    regReady_[inst.destReg()] = ret;
            } else {
                if (inst.destReg() != isa::NoReg)
                    regReady_[inst.destReg()] = ret;
            }
        }
    } else if (inst.store()) {
        ++stats_.stores;
        mem::AccessResult ar = mem_.access(rec.effAddr);
        ++stats_.l1Accesses;
        if (!ar.l1Hit)
            ++stats_.l1Misses; // write-allocate fill, buffered (no stall)
    } else {
        if (inst.destReg() != isa::NoReg)
            regReady_[inst.destReg()] = d + lat.result;

        if (inst.branch()) {
            bool correct = bpred_.predict(rec);
            if (!correct) {
                ++stats_.branchMispredicts;
                Cycle resolve = d + 1;
                stallUntil_ = std::max(
                    stallUntil_,
                    resolve + isa::mispredictPenalty(
                                  MachineIsa::Alpha21164));
            }
        }
    }

    stats_.cycles = std::max(stats_.cycles, d + lat.result);
}

void
Alpha21164Model::finish()
{
    // Account for pipeline drain (the 21164's deep back end).
    stats_.cycles += 6;
}

} // namespace lvplib::uarch

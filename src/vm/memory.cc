#include "vm/memory.hh"

#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "util/logging.hh"

namespace lvplib::vm
{

namespace
{

std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t n, std::uint64_t h)
{
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x00000100000001b3ull;
    }
    return h;
}

} // namespace

const SparseMemory::Page *
SparseMemory::findPage(Addr a) const
{
    Addr num = a >> PageShift;
    if (cachedPage_ && cachedPageNum_ == num)
        return cachedPage_;
    auto it = pages_.find(num);
    if (it == pages_.end())
        return nullptr;
    cachedPageNum_ = num;
    cachedPage_ = it->second.get();
    return cachedPage_;
}

SparseMemory::Page &
SparseMemory::touchPage(Addr a)
{
    Addr num = a >> PageShift;
    if (cachedPage_ && cachedPageNum_ == num)
        return *cachedPage_;
    auto &slot = pages_[num];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    cachedPageNum_ = num;
    cachedPage_ = slot.get();
    return *slot;
}

std::uint8_t
SparseMemory::readByte(Addr a) const
{
    const Page *p = findPage(a);
    return p ? (*p)[a & PageMask] : 0;
}

void
SparseMemory::writeByte(Addr a, std::uint8_t v)
{
    touchPage(a)[a & PageMask] = v;
}

Word
SparseMemory::readSlow(Addr a, unsigned size) const
{
    Addr off = a & PageMask;
    if constexpr (std::endian::native == std::endian::little) {
        if (off + size <= PageSize) {
            const Page *p = findPage(a);
            if (!p)
                return 0;
            Word v = 0;
            std::memcpy(&v, p->data() + off, size);
            return v;
        }
    }
    // Page-straddling (or big-endian host): per-byte assembly.
    Word v = 0;
    for (unsigned i = 0; i < size; ++i)
        v |= static_cast<Word>(readByte(a + i)) << (8 * i);
    return v;
}

void
SparseMemory::writeSlow(Addr a, Word v, unsigned size)
{
    Addr off = a & PageMask;
    if constexpr (std::endian::native == std::endian::little) {
        if (off + size <= PageSize) {
            std::memcpy(touchPage(a).data() + off, &v, size);
            return;
        }
    }
    for (unsigned i = 0; i < size; ++i)
        writeByte(a + i, static_cast<std::uint8_t>(v >> (8 * i)));
}

void
SparseMemory::loadImage(const isa::Program &prog)
{
    for (const auto &[addr, byte] : prog.dataImage())
        writeByte(addr, byte);
}

std::uint64_t
SparseMemory::imageHash() const
{
    std::vector<Addr> pageNums;
    pageNums.reserve(pages_.size());
    for (const auto &[num, page] : pages_)
        pageNums.push_back(num);
    std::sort(pageNums.begin(), pageNums.end());
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (Addr num : pageNums) {
        std::uint8_t b[8];
        for (unsigned i = 0; i < 8; ++i)
            b[i] = static_cast<std::uint8_t>(num >> (8 * i));
        h = fnv1a(b, sizeof(b), h);
        const Page &page = *pages_.at(num);
        h = fnv1a(page.data(), page.size(), h);
    }
    return h;
}

std::string
SparseMemory::readString(Addr a) const
{
    std::string s;
    for (Addr i = 0; i < 0x10000; ++i) {
        std::uint8_t b = readByte(a + i);
        if (b == 0)
            return s;
        s.push_back(static_cast<char>(b));
    }
    lvp_fatal("unterminated string at 0x%llx",
              static_cast<unsigned long long>(a));
}

} // namespace lvplib::vm

#include "vm/interpreter.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <vector>

#include "util/logging.hh"

namespace lvplib::vm
{

using isa::Cond;
using isa::Instruction;
using isa::Opcode;
using namespace isa::layout;

Interpreter::Interpreter(const isa::Program &prog) : prog_(prog)
{
    reset();
}

void
Interpreter::reset()
{
    regs_.fill(0);
    mem_.clear();
    mem_.loadImage(prog_);
    regs_[1] = StackTop;
    if (prog_.hasSymbol("__toc"))
        regs_[2] = prog_.symbol("__toc");
    pc_ = prog_.entry();
    retired_ = 0;
    halted_ = false;
}

Word
Interpreter::reg(RegIndex r) const
{
    lvp_dassert(r < isa::NumRegs, "reg %u", r);
    return r == 0 ? 0 : regs_[r];
}

void
Interpreter::setReg(RegIndex r, Word v)
{
    lvp_dassert(r < isa::NumRegs, "reg %u", r);
    if (r != 0)
        regs_[r] = v;
}

double
Interpreter::fprAsDouble(RegIndex f) const
{
    return std::bit_cast<double>(reg(static_cast<RegIndex>(
        isa::FprBase + f)));
}

namespace
{

/** Retire-buffer capacity for the batched run() loop (~64 KiB of
 *  records: large enough to amortize the virtual call, small enough
 *  to stay cache-resident). */
constexpr std::size_t RetireBatchRecords = 1024;

} // namespace

std::uint64_t
Interpreter::run(trace::TraceSink *sink, std::uint64_t max_instrs)
{
    std::uint64_t n = 0;
    if (!sink) {
        trace::TraceRecord rec;
        while (!halted_ && n < max_instrs) {
            rec = trace::TraceRecord{};
            stepInto(rec);
            ++n;
        }
        return n;
    }
    std::vector<trace::TraceRecord> batch(
        static_cast<std::size_t>(std::min<std::uint64_t>(
            max_instrs, RetireBatchRecords)));
    while (!halted_ && n < max_instrs) {
        std::size_t cap = static_cast<std::size_t>(
            std::min<std::uint64_t>(max_instrs - n, batch.size()));
        std::size_t k = 0;
        while (k < cap && !halted_) {
            batch[k] = trace::TraceRecord{};
            stepInto(batch[k]);
            ++k;
        }
        n += k;
        if (k > 0)
            sink->consumeBatch(
                std::span<const trace::TraceRecord>(batch.data(), k));
    }
    if (halted_)
        sink->finish();
    return n;
}

void
Interpreter::stepInto(trace::TraceRecord &rec)
{
    lvp_assert(!halted_, "step after halt");
    const Instruction &inst = prog_.fetch(pc_);

    rec.seq = retired_;
    rec.pc = pc_;
    rec.inst = &inst;
    rec.nextPc = pc_ + InstBytes;

    execute(inst, rec);

    if (RegIndex dest = inst.destReg(); dest != isa::NoReg)
        rec.destValue = reg(dest);

    pc_ = rec.nextPc;
    ++retired_;
}

void
Interpreter::step(trace::TraceSink *sink)
{
    trace::TraceRecord rec;
    stepInto(rec);
    if (sink)
        sink->consume(rec);
}

namespace
{

Word
compareSigned(Word a, Word b)
{
    auto sa = static_cast<SWord>(a);
    auto sb = static_cast<SWord>(b);
    if (sa < sb)
        return isa::CrLt;
    if (sa > sb)
        return isa::CrGt;
    return isa::CrEq;
}

Word
compareUnsigned(Word a, Word b)
{
    if (a < b)
        return isa::CrLt;
    if (a > b)
        return isa::CrGt;
    return isa::CrEq;
}

bool
condHolds(Cond c, Word cr)
{
    switch (c) {
      case Cond::LT: return (cr & isa::CrLt) != 0;
      case Cond::GT: return (cr & isa::CrGt) != 0;
      case Cond::EQ: return (cr & isa::CrEq) != 0;
      case Cond::GE: return (cr & isa::CrLt) == 0;
      case Cond::LE: return (cr & isa::CrGt) == 0;
      case Cond::NE: return (cr & isa::CrEq) == 0;
    }
    return false;
}

} // namespace

void
Interpreter::execute(const Instruction &inst, trace::TraceRecord &rec)
{
    auto rd = [&](Word v) { setReg(inst.rd, v); };
    auto s1 = [&] { return reg(inst.rs1); };
    auto s2 = [&] { return reg(inst.rs2); };
    auto f1 = [&] { return std::bit_cast<double>(reg(inst.rs1)); };
    auto f2 = [&] { return std::bit_cast<double>(reg(inst.rs2)); };
    auto fd = [&](double v) { setReg(inst.rd, std::bit_cast<Word>(v)); };
    auto uimm = [&] { return static_cast<Word>(inst.imm); };

    switch (inst.op) {
      case Opcode::ADD: rd(s1() + s2()); break;
      case Opcode::SUB: rd(s1() - s2()); break;
      case Opcode::AND: rd(s1() & s2()); break;
      case Opcode::OR: rd(s1() | s2()); break;
      case Opcode::XOR: rd(s1() ^ s2()); break;
      case Opcode::SLD: rd(s2() >= 64 ? 0 : s1() << (s2() & 63)); break;
      case Opcode::SRD: rd(s2() >= 64 ? 0 : s1() >> (s2() & 63)); break;
      case Opcode::SRAD:
        rd(static_cast<Word>(static_cast<SWord>(s1()) >>
                             (s2() >= 63 ? 63 : (s2() & 63))));
        break;
      case Opcode::ADDI: rd(s1() + uimm()); break;
      case Opcode::ANDI: rd(s1() & (uimm() & 0xffff)); break;
      case Opcode::ORI: rd(s1() | (uimm() & 0xffff)); break;
      case Opcode::XORI: rd(s1() ^ (uimm() & 0xffff)); break;
      case Opcode::SLDI: rd(s1() << inst.imm); break;
      case Opcode::SRDI: rd(s1() >> inst.imm); break;
      case Opcode::SRADI:
        rd(static_cast<Word>(static_cast<SWord>(s1()) >> inst.imm));
        break;
      case Opcode::CMP: rd(compareSigned(s1(), s2())); break;
      case Opcode::CMPU: rd(compareUnsigned(s1(), s2())); break;
      case Opcode::CMPI: rd(compareSigned(s1(), uimm())); break;
      case Opcode::NOP: break;

      case Opcode::MULL: rd(s1() * s2()); break;
      case Opcode::DIVD: {
        auto d = static_cast<SWord>(s2());
        rd(d == 0 ? 0
                  : static_cast<Word>(static_cast<SWord>(s1()) / d));
        break;
      }
      case Opcode::REMD: {
        auto d = static_cast<SWord>(s2());
        rd(d == 0 ? s1()
                  : static_cast<Word>(static_cast<SWord>(s1()) % d));
        break;
      }
      case Opcode::MFLR: rd(reg(isa::RegLr)); break;
      case Opcode::MTLR: setReg(isa::RegLr, s1()); break;
      case Opcode::MFCTR: rd(reg(isa::RegCtr)); break;
      case Opcode::MTCTR: setReg(isa::RegCtr, s1()); break;

      case Opcode::FADD: fd(f1() + f2()); break;
      case Opcode::FSUB: fd(f1() - f2()); break;
      case Opcode::FMUL: fd(f1() * f2()); break;
      case Opcode::FDIV: fd(f2() == 0.0 ? 0.0 : f1() / f2()); break;
      case Opcode::FSQRT: fd(f1() < 0.0 ? 0.0 : std::sqrt(f1())); break;
      case Opcode::FCMP: {
        double a = f1(), b = f2();
        rd(a < b ? isa::CrLt : a > b ? isa::CrGt : isa::CrEq);
        break;
      }
      case Opcode::FCFID:
        fd(static_cast<double>(static_cast<SWord>(s1())));
        break;
      case Opcode::FCTID: {
        // Saturating conversion, as the PowerPC fctid defines it
        // (NaN converts to zero here for determinism).
        double v = f1();
        SWord out;
        if (std::isnan(v))
            out = 0;
        else if (v >= 0x1p63)
            out = std::numeric_limits<SWord>::max();
        else if (v < -0x1p63)
            out = std::numeric_limits<SWord>::min();
        else
            out = static_cast<SWord>(v);
        rd(static_cast<Word>(out));
        break;
      }
      case Opcode::FMR: rd(s1()); break;
      case Opcode::FNEG: fd(-f1()); break;
      case Opcode::FABS: fd(std::fabs(f1())); break;

      case Opcode::LD: case Opcode::LWZ: case Opcode::LBZ:
      case Opcode::LFD: {
        rec.effAddr = s1() + uimm();
        rec.value = mem_.read(rec.effAddr, inst.accessSize());
        rd(rec.value);
        break;
      }
      case Opcode::STD: case Opcode::STW: case Opcode::STB:
      case Opcode::STFD: {
        rec.effAddr = s1() + uimm();
        rec.value = s2();
        mem_.write(rec.effAddr, rec.value, inst.accessSize());
        break;
      }

      case Opcode::B:
        rec.taken = true;
        rec.nextPc = static_cast<Addr>(inst.imm);
        break;
      case Opcode::BC:
        rec.taken = condHolds(inst.cond, reg(inst.rs1));
        if (rec.taken)
            rec.nextPc = static_cast<Addr>(inst.imm);
        break;
      case Opcode::BL:
        rec.taken = true;
        setReg(isa::RegLr, pc_ + InstBytes);
        rec.nextPc = static_cast<Addr>(inst.imm);
        break;
      case Opcode::BLR:
        rec.taken = true;
        rec.nextPc = reg(isa::RegLr);
        break;
      case Opcode::BCTR:
        rec.taken = true;
        rec.nextPc = reg(isa::RegCtr);
        break;
      case Opcode::BCTRL:
        rec.taken = true;
        setReg(isa::RegLr, pc_ + InstBytes);
        rec.nextPc = reg(isa::RegCtr);
        break;

      case Opcode::HALT:
        halted_ = true;
        rec.nextPc = pc_;
        break;

      case Opcode::NumOpcodes:
        lvp_panic("bad opcode");
    }

    // Recoverable (SimError, not fatal): a malformed program or a
    // corrupt indirect-branch target must fail this run cleanly, not
    // take down the whole experiment engine.
    if (rec.nextPc != pc_ && !prog_.validPc(rec.nextPc) && !halted_)
        throw SimError(
            ErrorKind::InvalidPc,
            detail::formatMsg(
                "control transfer to invalid pc 0x%llx from 0x%llx",
                static_cast<unsigned long long>(rec.nextPc),
                static_cast<unsigned long long>(pc_)));
}

} // namespace lvplib::vm

#include "vm/interpreter.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <vector>

#include "util/logging.hh"

// The computed-goto core needs the GNU labels-as-values extension and
// is only compiled when the build opts in (CMake option
// LVPLIB_THREADED_DISPATCH). Every other compiler gets the portable
// predecoded switch core, which the goto mode silently falls back to.
#if defined(LVPLIB_THREADED_DISPATCH) && \
    (defined(__GNUC__) || defined(__clang__))
#define LVPLIB_VM_HAVE_GOTO 1
#else
#define LVPLIB_VM_HAVE_GOTO 0
#endif

namespace lvplib::vm
{

using isa::Cond;
using isa::Instruction;
using isa::Opcode;
using namespace isa::layout;

Interpreter::Interpreter(const isa::Program &prog) : prog_(prog)
{
    predecode();
    reset();
}

void
Interpreter::reset()
{
    regs_.fill(0);
    mem_.clear();
    mem_.loadImage(prog_);
    regs_[1] = StackTop;
    if (prog_.hasSymbol("__toc"))
        regs_[2] = prog_.symbol("__toc");
    pc_ = prog_.entry();
    retired_ = 0;
    halted_ = false;
}

DispatchMode
Interpreter::defaultDispatch()
{
#if LVPLIB_VM_HAVE_GOTO
    return DispatchMode::ThreadedGoto;
#else
    return DispatchMode::Predecoded;
#endif
}

bool
Interpreter::threadedGotoAvailable()
{
    return LVPLIB_VM_HAVE_GOTO != 0;
}

void
Interpreter::predecode()
{
    dcode_.clear();
    dcode_.reserve(prog_.code().size());
    for (const Instruction &inst : prog_.code()) {
        DecodedInst d{};
        d.op = inst.op;
        d.rd = inst.rd;
        d.rs1 = inst.rs1;
        d.rs2 = inst.rs2;
        d.dest = inst.destReg();
        d.imm = inst.imm;
        d.src = &inst;
        // BC's condition test collapses to one mask-and-compare:
        // taken = ((cr & crMask) != 0) == crExpect, mirroring
        // condHolds() below.
        d.crMask = 0;
        d.crExpect = true;
        if (inst.op == Opcode::BC) {
            switch (inst.cond) {
              case Cond::LT: d.crMask = isa::CrLt; break;
              case Cond::GT: d.crMask = isa::CrGt; break;
              case Cond::EQ: d.crMask = isa::CrEq; break;
              case Cond::GE: d.crMask = isa::CrLt; d.crExpect = false;
                break;
              case Cond::LE: d.crMask = isa::CrGt; d.crExpect = false;
                break;
              case Cond::NE: d.crMask = isa::CrEq; d.crExpect = false;
                break;
            }
        }
        dcode_.push_back(d);
    }
}

Word
Interpreter::reg(RegIndex r) const
{
    lvp_dassert(r < isa::NumRegs, "reg %u", r);
    return r == 0 ? 0 : regs_[r];
}

void
Interpreter::setReg(RegIndex r, Word v)
{
    lvp_dassert(r < isa::NumRegs, "reg %u", r);
    if (r != 0)
        regs_[r] = v;
}

double
Interpreter::fprAsDouble(RegIndex f) const
{
    return std::bit_cast<double>(reg(static_cast<RegIndex>(
        isa::FprBase + f)));
}

namespace
{

/** Retire-buffer capacity for the batched run() loop (~64 KiB of
 *  records: large enough to amortize the virtual call, small enough
 *  to stay cache-resident). */
constexpr std::size_t RetireBatchRecords = 1024;

[[noreturn]] void
throwInvalidPc(Addr nextPc, Addr pc)
{
    // Recoverable (SimError, not fatal): a malformed program or a
    // corrupt indirect-branch target must fail this run cleanly, not
    // take down the whole experiment engine.
    throw SimError(
        ErrorKind::InvalidPc,
        detail::formatMsg(
            "control transfer to invalid pc 0x%llx from 0x%llx",
            static_cast<unsigned long long>(nextPc),
            static_cast<unsigned long long>(pc)));
}

Word
compareSigned(Word a, Word b)
{
    auto sa = static_cast<SWord>(a);
    auto sb = static_cast<SWord>(b);
    if (sa < sb)
        return isa::CrLt;
    if (sa > sb)
        return isa::CrGt;
    return isa::CrEq;
}

Word
compareUnsigned(Word a, Word b)
{
    if (a < b)
        return isa::CrLt;
    if (a > b)
        return isa::CrGt;
    return isa::CrEq;
}

bool
condHolds(Cond c, Word cr)
{
    switch (c) {
      case Cond::LT: return (cr & isa::CrLt) != 0;
      case Cond::GT: return (cr & isa::CrGt) != 0;
      case Cond::EQ: return (cr & isa::CrEq) != 0;
      case Cond::GE: return (cr & isa::CrLt) == 0;
      case Cond::LE: return (cr & isa::CrGt) == 0;
      case Cond::NE: return (cr & isa::CrEq) == 0;
    }
    return false;
}

} // namespace

std::uint64_t
Interpreter::run(trace::TraceSink *sink, std::uint64_t max_instrs)
{
    switch (dispatch_) {
      case DispatchMode::LegacySwitch:
        return runLegacy(sink, max_instrs);
      case DispatchMode::Predecoded:
        return runPredecoded(sink, max_instrs);
      case DispatchMode::ThreadedGoto:
#if LVPLIB_VM_HAVE_GOTO
        return runThreaded(sink, max_instrs);
#else
        return runPredecoded(sink, max_instrs);
#endif
    }
    return runLegacy(sink, max_instrs);
}

std::uint64_t
Interpreter::runLegacy(trace::TraceSink *sink, std::uint64_t max_instrs)
{
    std::uint64_t n = 0;
    if (!sink) {
        trace::TraceRecord rec;
        while (!halted_ && n < max_instrs) {
            rec = trace::TraceRecord{};
            stepInto(rec);
            ++n;
        }
        return n;
    }
    std::vector<trace::TraceRecord> batch(
        static_cast<std::size_t>(std::min<std::uint64_t>(
            max_instrs, RetireBatchRecords)));
    while (!halted_ && n < max_instrs) {
        std::size_t cap = static_cast<std::size_t>(
            std::min<std::uint64_t>(max_instrs - n, batch.size()));
        std::size_t k = 0;
        while (k < cap && !halted_) {
            batch[k] = trace::TraceRecord{};
            stepInto(batch[k]);
            ++k;
        }
        n += k;
        if (k > 0)
            sink->consumeBatch(
                std::span<const trace::TraceRecord>(batch.data(), k));
    }
    if (halted_)
        sink->finish();
    return n;
}

// Operand access for the predecoded handler bodies. LVP_W preserves
// the r0-discards-writes rule; LVP_R relies on the invariant that
// regs_[0] is never written, so it stays zero without a branch.
#define LVP_R(r) regs[r]
#define LVP_W(r, v)                                                    \
    do {                                                               \
        RegIndex lvp_wr = (r);                                         \
        if (lvp_wr != 0)                                               \
            regs[lvp_wr] = (v);                                        \
    } while (0)
#define LVP_UIMM static_cast<Word>(di.imm)
#define LVP_F1 std::bit_cast<double>(LVP_R(di.rs1))
#define LVP_F2 std::bit_cast<double>(LVP_R(di.rs2))
#define LVP_WF(v) LVP_W(di.rd, std::bit_cast<Word>(v))
#define LVP_LOAD(sz)                                                   \
    rc.effAddr = LVP_R(di.rs1) + LVP_UIMM;                             \
    rc.value = mem_.read(rc.effAddr, sz);                              \
    LVP_W(di.rd, rc.value);
#define LVP_STORE(sz)                                                  \
    rc.effAddr = LVP_R(di.rs1) + LVP_UIMM;                             \
    rc.value = LVP_R(di.rs2);                                          \
    mem_.write(rc.effAddr, rc.value, sz);

/**
 * X-macro naming every opcode handler body exactly once, in Opcode
 * enum order — the computed-goto label table is built positionally
 * from this list, so the order here MUST match isa::Opcode. Bodies
 * reference the per-step names `di` (current DecodedInst), `rc`
 * (current TraceRecord), `nextPc`, `regs`, and `pc`, which each
 * predecoded core establishes before expanding the list. Semantics
 * mirror Interpreter::execute() bit for bit.
 */
#define LVPLIB_VM_FOREACH_OP(X)                                        \
    X(ADD, LVP_W(di.rd, LVP_R(di.rs1) + LVP_R(di.rs2));)               \
    X(SUB, LVP_W(di.rd, LVP_R(di.rs1) - LVP_R(di.rs2));)               \
    X(AND, LVP_W(di.rd, LVP_R(di.rs1) & LVP_R(di.rs2));)               \
    X(OR, LVP_W(di.rd, LVP_R(di.rs1) | LVP_R(di.rs2));)                \
    X(XOR, LVP_W(di.rd, LVP_R(di.rs1) ^ LVP_R(di.rs2));)               \
    X(SLD, Word sb = LVP_R(di.rs2);                                    \
      LVP_W(di.rd, sb >= 64 ? 0 : LVP_R(di.rs1) << (sb & 63));)        \
    X(SRD, Word sb = LVP_R(di.rs2);                                    \
      LVP_W(di.rd, sb >= 64 ? 0 : LVP_R(di.rs1) >> (sb & 63));)        \
    X(SRAD, Word sb = LVP_R(di.rs2);                                   \
      LVP_W(di.rd,                                                     \
            static_cast<Word>(static_cast<SWord>(LVP_R(di.rs1)) >>     \
                              (sb >= 63 ? 63 : (sb & 63))));)          \
    X(ADDI, LVP_W(di.rd, LVP_R(di.rs1) + LVP_UIMM);)                   \
    X(ANDI, LVP_W(di.rd, LVP_R(di.rs1) & (LVP_UIMM & 0xffff));)        \
    X(ORI, LVP_W(di.rd, LVP_R(di.rs1) | (LVP_UIMM & 0xffff));)         \
    X(XORI, LVP_W(di.rd, LVP_R(di.rs1) ^ (LVP_UIMM & 0xffff));)        \
    X(SLDI, LVP_W(di.rd, LVP_R(di.rs1) << di.imm);)                    \
    X(SRDI, LVP_W(di.rd, LVP_R(di.rs1) >> di.imm);)                    \
    X(SRADI,                                                           \
      LVP_W(di.rd, static_cast<Word>(                                  \
                       static_cast<SWord>(LVP_R(di.rs1)) >> di.imm));) \
    X(CMP,                                                             \
      LVP_W(di.rd, compareSigned(LVP_R(di.rs1), LVP_R(di.rs2)));)      \
    X(CMPU,                                                            \
      LVP_W(di.rd, compareUnsigned(LVP_R(di.rs1), LVP_R(di.rs2)));)    \
    X(CMPI, LVP_W(di.rd, compareSigned(LVP_R(di.rs1), LVP_UIMM));)     \
    X(NOP, ;)                                                          \
    X(MULL, LVP_W(di.rd, LVP_R(di.rs1) * LVP_R(di.rs2));)              \
    X(DIVD, auto dv = static_cast<SWord>(LVP_R(di.rs2));               \
      LVP_W(di.rd,                                                     \
            dv == 0 ? 0                                                \
                    : static_cast<Word>(                               \
                          static_cast<SWord>(LVP_R(di.rs1)) / dv));)   \
    X(REMD, auto dv = static_cast<SWord>(LVP_R(di.rs2));               \
      LVP_W(di.rd,                                                     \
            dv == 0 ? LVP_R(di.rs1)                                    \
                    : static_cast<Word>(                               \
                          static_cast<SWord>(LVP_R(di.rs1)) % dv));)   \
    X(MFLR, LVP_W(di.rd, LVP_R(isa::RegLr));)                          \
    X(MTLR, regs[isa::RegLr] = LVP_R(di.rs1);)                         \
    X(MFCTR, LVP_W(di.rd, LVP_R(isa::RegCtr));)                        \
    X(MTCTR, regs[isa::RegCtr] = LVP_R(di.rs1);)                       \
    X(FADD, LVP_WF(LVP_F1 + LVP_F2);)                                  \
    X(FSUB, LVP_WF(LVP_F1 - LVP_F2);)                                  \
    X(FMUL, LVP_WF(LVP_F1 * LVP_F2);)                                  \
    X(FDIV, double fb = LVP_F2;                                        \
      LVP_WF(fb == 0.0 ? 0.0 : LVP_F1 / fb);)                          \
    X(FSQRT, double fa = LVP_F1;                                       \
      LVP_WF(fa < 0.0 ? 0.0 : std::sqrt(fa));)                         \
    X(FCMP, double fa = LVP_F1;                                        \
      double fb = LVP_F2;                                              \
      LVP_W(di.rd,                                                     \
            fa < fb ? isa::CrLt : fa > fb ? isa::CrGt : isa::CrEq);)   \
    X(FCFID,                                                           \
      LVP_WF(static_cast<double>(                                      \
          static_cast<SWord>(LVP_R(di.rs1))));)                        \
    X(FCTID, /* saturating, NaN -> 0, as execute() defines it */       \
      double fv = LVP_F1;                                              \
      SWord out;                                                       \
      if (std::isnan(fv))                                              \
          out = 0;                                                     \
      else if (fv >= 0x1p63)                                           \
          out = std::numeric_limits<SWord>::max();                     \
      else if (fv < -0x1p63)                                           \
          out = std::numeric_limits<SWord>::min();                     \
      else                                                             \
          out = static_cast<SWord>(fv);                                \
      LVP_W(di.rd, static_cast<Word>(out));)                           \
    X(FMR, LVP_W(di.rd, LVP_R(di.rs1));)                               \
    X(FNEG, LVP_WF(-LVP_F1);)                                          \
    X(FABS, LVP_WF(std::fabs(LVP_F1));)                                \
    X(LD, LVP_LOAD(8))                                                 \
    X(LWZ, LVP_LOAD(4))                                                \
    X(LBZ, LVP_LOAD(1))                                                \
    X(LFD, LVP_LOAD(8))                                                \
    X(STD, LVP_STORE(8))                                               \
    X(STW, LVP_STORE(4))                                               \
    X(STB, LVP_STORE(1))                                               \
    X(STFD, LVP_STORE(8))                                              \
    X(B, rc.taken = true;                                              \
      nextPc = static_cast<Addr>(di.imm);)                             \
    X(BC,                                                              \
      rc.taken =                                                       \
          ((LVP_R(di.rs1) & di.crMask) != 0) == di.crExpect;           \
      if (rc.taken)                                                    \
          nextPc = static_cast<Addr>(di.imm);)                         \
    X(BL, rc.taken = true;                                             \
      regs[isa::RegLr] = pc + InstBytes;                               \
      nextPc = static_cast<Addr>(di.imm);)                             \
    X(BLR, rc.taken = true;                                            \
      nextPc = LVP_R(isa::RegLr);)                                     \
    X(BCTR, rc.taken = true;                                           \
      nextPc = LVP_R(isa::RegCtr);)                                    \
    X(BCTRL, rc.taken = true;                                          \
      regs[isa::RegLr] = pc + InstBytes;                               \
      nextPc = LVP_R(isa::RegCtr);)                                    \
    X(HALT, halted_ = true;                                            \
      nextPc = pc;)

#define LVPLIB_VM_CASE(NAME, ...)                                      \
  case Opcode::NAME: {                                                 \
    __VA_ARGS__                                                        \
  } break;

std::uint64_t
Interpreter::runPredecoded(trace::TraceSink *sink,
                           std::uint64_t max_instrs)
{
    if (dcode_.size() != prog_.code().size())
        predecode();
    std::uint64_t n = 0;
    // Without a sink all records land in one reusable slot (recMask
    // masks the index to 0), matching the legacy no-sink loop's
    // single cache-hot scratch record.
    std::vector<trace::TraceRecord> batch(
        static_cast<std::size_t>(std::min<std::uint64_t>(
            max_instrs, sink ? RetireBatchRecords : 1)));
    const std::size_t recMask =
        sink ? std::numeric_limits<std::size_t>::max() : 0;
    Word *const regs = regs_.data();
    const DecodedInst *const code = dcode_.data();
    const Addr codeEnd = prog_.codeEnd();

    Addr pc = pc_;
    std::uint64_t retired = retired_;
    while (!halted_ && n < max_instrs) {
        const std::size_t cap = static_cast<std::size_t>(
            std::min<std::uint64_t>(max_instrs - n,
                                    RetireBatchRecords));
        std::size_t k = 0;
        while (k < cap && !halted_) {
            trace::TraceRecord &rc = batch[k & recMask];
            rc = trace::TraceRecord{};
            const DecodedInst &di =
                code[(pc - CodeBase) / InstBytes];
            rc.seq = retired;
            rc.pc = pc;
            rc.inst = di.src;
            Addr nextPc = pc + InstBytes;
            switch (di.op) {
                LVPLIB_VM_FOREACH_OP(LVPLIB_VM_CASE)
              case Opcode::NumOpcodes:
                lvp_panic("bad opcode");
            }
            rc.nextPc = nextPc;
            if (nextPc != pc &&
                (nextPc < CodeBase || nextPc >= codeEnd ||
                 (nextPc - CodeBase) % InstBytes != 0) &&
                !halted_) {
                pc_ = pc;
                retired_ = retired;
                throwInvalidPc(nextPc, pc);
            }
            if (di.dest != isa::NoReg)
                rc.destValue = regs[di.dest];
            pc = nextPc;
            ++retired;
            ++k;
        }
        n += k;
        pc_ = pc;
        retired_ = retired;
        if (sink && k > 0)
            sink->consumeBatch(
                std::span<const trace::TraceRecord>(batch.data(), k));
    }
    pc_ = pc;
    retired_ = retired;
    if (sink && halted_)
        sink->finish();
    return n;
}

#if LVPLIB_VM_HAVE_GOTO

std::uint64_t
Interpreter::runThreaded(trace::TraceSink *sink,
                         std::uint64_t max_instrs)
{
    if (dcode_.size() != prog_.code().size())
        predecode();
    std::uint64_t n = 0;
    std::vector<trace::TraceRecord> batch(
        static_cast<std::size_t>(std::min<std::uint64_t>(
            max_instrs, sink ? RetireBatchRecords : 1)));
    const std::size_t recMask =
        sink ? std::numeric_limits<std::size_t>::max() : 0;
    Word *const regs = regs_.data();
    const DecodedInst *const code = dcode_.data();
    const Addr codeEnd = prog_.codeEnd();

    // One label per opcode, positionally aligned with the Opcode
    // enum via LVPLIB_VM_FOREACH_OP's ordering guarantee.
#define LVPLIB_VM_LABEL(NAME, ...) &&L_##NAME,
    static const void *const kLabels[] = {
        LVPLIB_VM_FOREACH_OP(LVPLIB_VM_LABEL)
    };
#undef LVPLIB_VM_LABEL
    static_assert(sizeof(kLabels) / sizeof(kLabels[0]) ==
                      static_cast<std::size_t>(Opcode::NumOpcodes),
                  "label table out of sync with Opcode enum");

    Addr pc = pc_;
    std::uint64_t retired = retired_;
    const DecodedInst *dip = nullptr;
    trace::TraceRecord *rcp = nullptr;
    Addr nextPc = 0;
    std::size_t cap = 0;
    std::size_t k = 0;

// The threaded inner loop: every handler ends by jumping straight to
// the next instruction's handler, so the only per-step branches are
// the batch-full check and the indirect goto itself.
#define LVPLIB_VM_DISPATCH()                                           \
    do {                                                               \
        if (k == cap || halted_)                                       \
            goto batch_done;                                           \
        rcp = &batch[k & recMask];                                     \
        *rcp = trace::TraceRecord{};                                   \
        dip = &code[(pc - CodeBase) / InstBytes];                      \
        rcp->seq = retired;                                            \
        rcp->pc = pc;                                                  \
        rcp->inst = dip->src;                                          \
        nextPc = pc + InstBytes;                                       \
        goto *kLabels[static_cast<std::size_t>(dip->op)];              \
    } while (0)

#define LVPLIB_VM_EPILOGUE()                                           \
    do {                                                               \
        rcp->nextPc = nextPc;                                          \
        if (nextPc != pc &&                                            \
            (nextPc < CodeBase || nextPc >= codeEnd ||                 \
             (nextPc - CodeBase) % InstBytes != 0) &&                  \
            !halted_) {                                                \
            pc_ = pc;                                                  \
            retired_ = retired;                                        \
            throwInvalidPc(nextPc, pc);                                \
        }                                                              \
        if (dip->dest != isa::NoReg)                                   \
            rcp->destValue = regs[dip->dest];                          \
        pc = nextPc;                                                   \
        ++retired;                                                     \
        ++k;                                                           \
    } while (0)

    while (!halted_ && n < max_instrs) {
        cap = static_cast<std::size_t>(std::min<std::uint64_t>(
            max_instrs - n, RetireBatchRecords));
        k = 0;

        LVPLIB_VM_DISPATCH();

// Handler bodies are written against the names `di` and `rc`; in this
// core they alias the per-step pointers the dispatcher maintains.
#define di (*dip)
#define rc (*rcp)
#define LVPLIB_VM_HANDLER(NAME, ...)                                   \
  L_##NAME: {                                                          \
        __VA_ARGS__                                                    \
    }                                                                  \
    LVPLIB_VM_EPILOGUE();                                              \
    LVPLIB_VM_DISPATCH();

        LVPLIB_VM_FOREACH_OP(LVPLIB_VM_HANDLER)

#undef LVPLIB_VM_HANDLER
#undef di
#undef rc

    batch_done:
        n += k;
        pc_ = pc;
        retired_ = retired;
        if (sink && k > 0)
            sink->consumeBatch(
                std::span<const trace::TraceRecord>(batch.data(), k));
    }

#undef LVPLIB_VM_DISPATCH
#undef LVPLIB_VM_EPILOGUE

    pc_ = pc;
    retired_ = retired;
    if (sink && halted_)
        sink->finish();
    return n;
}

#else // !LVPLIB_VM_HAVE_GOTO

std::uint64_t
Interpreter::runThreaded(trace::TraceSink *sink,
                         std::uint64_t max_instrs)
{
    return runPredecoded(sink, max_instrs);
}

#endif // LVPLIB_VM_HAVE_GOTO

#undef LVP_R
#undef LVP_W
#undef LVP_UIMM
#undef LVP_F1
#undef LVP_F2
#undef LVP_WF
#undef LVP_LOAD
#undef LVP_STORE

void
Interpreter::stepInto(trace::TraceRecord &rec)
{
    lvp_assert(!halted_, "step after halt");
    const Instruction &inst = prog_.fetch(pc_);

    rec.seq = retired_;
    rec.pc = pc_;
    rec.inst = &inst;
    rec.nextPc = pc_ + InstBytes;

    execute(inst, rec);

    if (RegIndex dest = inst.destReg(); dest != isa::NoReg)
        rec.destValue = reg(dest);

    pc_ = rec.nextPc;
    ++retired_;
}

void
Interpreter::step(trace::TraceSink *sink)
{
    trace::TraceRecord rec;
    stepInto(rec);
    if (sink)
        sink->consume(rec);
}

void
Interpreter::execute(const Instruction &inst, trace::TraceRecord &rec)
{
    auto rd = [&](Word v) { setReg(inst.rd, v); };
    auto s1 = [&] { return reg(inst.rs1); };
    auto s2 = [&] { return reg(inst.rs2); };
    auto f1 = [&] { return std::bit_cast<double>(reg(inst.rs1)); };
    auto f2 = [&] { return std::bit_cast<double>(reg(inst.rs2)); };
    auto fd = [&](double v) { setReg(inst.rd, std::bit_cast<Word>(v)); };
    auto uimm = [&] { return static_cast<Word>(inst.imm); };

    switch (inst.op) {
      case Opcode::ADD: rd(s1() + s2()); break;
      case Opcode::SUB: rd(s1() - s2()); break;
      case Opcode::AND: rd(s1() & s2()); break;
      case Opcode::OR: rd(s1() | s2()); break;
      case Opcode::XOR: rd(s1() ^ s2()); break;
      case Opcode::SLD: rd(s2() >= 64 ? 0 : s1() << (s2() & 63)); break;
      case Opcode::SRD: rd(s2() >= 64 ? 0 : s1() >> (s2() & 63)); break;
      case Opcode::SRAD:
        rd(static_cast<Word>(static_cast<SWord>(s1()) >>
                             (s2() >= 63 ? 63 : (s2() & 63))));
        break;
      case Opcode::ADDI: rd(s1() + uimm()); break;
      case Opcode::ANDI: rd(s1() & (uimm() & 0xffff)); break;
      case Opcode::ORI: rd(s1() | (uimm() & 0xffff)); break;
      case Opcode::XORI: rd(s1() ^ (uimm() & 0xffff)); break;
      case Opcode::SLDI: rd(s1() << inst.imm); break;
      case Opcode::SRDI: rd(s1() >> inst.imm); break;
      case Opcode::SRADI:
        rd(static_cast<Word>(static_cast<SWord>(s1()) >> inst.imm));
        break;
      case Opcode::CMP: rd(compareSigned(s1(), s2())); break;
      case Opcode::CMPU: rd(compareUnsigned(s1(), s2())); break;
      case Opcode::CMPI: rd(compareSigned(s1(), uimm())); break;
      case Opcode::NOP: break;

      case Opcode::MULL: rd(s1() * s2()); break;
      case Opcode::DIVD: {
        auto d = static_cast<SWord>(s2());
        rd(d == 0 ? 0
                  : static_cast<Word>(static_cast<SWord>(s1()) / d));
        break;
      }
      case Opcode::REMD: {
        auto d = static_cast<SWord>(s2());
        rd(d == 0 ? s1()
                  : static_cast<Word>(static_cast<SWord>(s1()) % d));
        break;
      }
      case Opcode::MFLR: rd(reg(isa::RegLr)); break;
      case Opcode::MTLR: setReg(isa::RegLr, s1()); break;
      case Opcode::MFCTR: rd(reg(isa::RegCtr)); break;
      case Opcode::MTCTR: setReg(isa::RegCtr, s1()); break;

      case Opcode::FADD: fd(f1() + f2()); break;
      case Opcode::FSUB: fd(f1() - f2()); break;
      case Opcode::FMUL: fd(f1() * f2()); break;
      case Opcode::FDIV: fd(f2() == 0.0 ? 0.0 : f1() / f2()); break;
      case Opcode::FSQRT: fd(f1() < 0.0 ? 0.0 : std::sqrt(f1())); break;
      case Opcode::FCMP: {
        double a = f1(), b = f2();
        rd(a < b ? isa::CrLt : a > b ? isa::CrGt : isa::CrEq);
        break;
      }
      case Opcode::FCFID:
        fd(static_cast<double>(static_cast<SWord>(s1())));
        break;
      case Opcode::FCTID: {
        // Saturating conversion, as the PowerPC fctid defines it
        // (NaN converts to zero here for determinism).
        double v = f1();
        SWord out;
        if (std::isnan(v))
            out = 0;
        else if (v >= 0x1p63)
            out = std::numeric_limits<SWord>::max();
        else if (v < -0x1p63)
            out = std::numeric_limits<SWord>::min();
        else
            out = static_cast<SWord>(v);
        rd(static_cast<Word>(out));
        break;
      }
      case Opcode::FMR: rd(s1()); break;
      case Opcode::FNEG: fd(-f1()); break;
      case Opcode::FABS: fd(std::fabs(f1())); break;

      case Opcode::LD: case Opcode::LWZ: case Opcode::LBZ:
      case Opcode::LFD: {
        rec.effAddr = s1() + uimm();
        rec.value = mem_.read(rec.effAddr, inst.accessSize());
        rd(rec.value);
        break;
      }
      case Opcode::STD: case Opcode::STW: case Opcode::STB:
      case Opcode::STFD: {
        rec.effAddr = s1() + uimm();
        rec.value = s2();
        mem_.write(rec.effAddr, rec.value, inst.accessSize());
        break;
      }

      case Opcode::B:
        rec.taken = true;
        rec.nextPc = static_cast<Addr>(inst.imm);
        break;
      case Opcode::BC:
        rec.taken = condHolds(inst.cond, reg(inst.rs1));
        if (rec.taken)
            rec.nextPc = static_cast<Addr>(inst.imm);
        break;
      case Opcode::BL:
        rec.taken = true;
        setReg(isa::RegLr, pc_ + InstBytes);
        rec.nextPc = static_cast<Addr>(inst.imm);
        break;
      case Opcode::BLR:
        rec.taken = true;
        rec.nextPc = reg(isa::RegLr);
        break;
      case Opcode::BCTR:
        rec.taken = true;
        rec.nextPc = reg(isa::RegCtr);
        break;
      case Opcode::BCTRL:
        rec.taken = true;
        setReg(isa::RegLr, pc_ + InstBytes);
        rec.nextPc = reg(isa::RegCtr);
        break;

      case Opcode::HALT:
        halted_ = true;
        rec.nextPc = pc_;
        break;

      case Opcode::NumOpcodes:
        lvp_panic("bad opcode");
    }

    // Recoverable (SimError, not fatal): a malformed program or a
    // corrupt indirect-branch target must fail this run cleanly, not
    // take down the whole experiment engine.
    if (rec.nextPc != pc_ && !prog_.validPc(rec.nextPc) && !halted_)
        throw SimError(
            ErrorKind::InvalidPc,
            detail::formatMsg(
                "control transfer to invalid pc 0x%llx from 0x%llx",
                static_cast<unsigned long long>(rec.nextPc),
                static_cast<unsigned long long>(pc_)));
}

} // namespace lvplib::vm

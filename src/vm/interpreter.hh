/**
 * @file
 * The VLISA functional interpreter. Executes a Program to completion
 * and streams one TraceRecord per retired instruction to a TraceSink —
 * this is lvplib's stand-in for the paper's TRIP6000/ATOM tracing
 * tools (user-state instruction, address, and value traces).
 */

#ifndef LVPLIB_VM_INTERPRETER_HH
#define LVPLIB_VM_INTERPRETER_HH

#include <array>
#include <cstdint>
#include <limits>

#include "isa/program.hh"
#include "trace/trace.hh"
#include "vm/memory.hh"

namespace lvplib::vm
{

/** Functional execution engine for one Program. */
class Interpreter
{
  public:
    /**
     * Bind to @p prog and initialize machine state: data image loaded,
     * r1 = stack top, r2 = the "__toc" symbol when the program defines
     * one, pc = entry.
     */
    explicit Interpreter(const isa::Program &prog);

    /** Reinitialize registers, memory, and pc. */
    void reset();

    /**
     * Run until HALT or until @p max_instrs retire. Each retired
     * instruction is passed to @p sink when non-null; sink->finish()
     * is called when the program halts.
     *
     * Records are accumulated into an internal retire buffer and
     * handed to sink->consumeBatch() (one virtual call per ~1 Ki
     * instructions) in retirement order. A sink that throws mid-batch
     * (e.g. WatchdogSink) observes exactly the records it would have
     * seen record-at-a-time; the interpreter itself may have retired
     * further instructions into the undelivered tail of the buffer,
     * which callers discard along with the failed run.
     *
     * @return Number of instructions retired by this call.
     */
    std::uint64_t run(trace::TraceSink *sink = nullptr,
                      std::uint64_t max_instrs =
                          std::numeric_limits<std::uint64_t>::max());

    /** Single-step one instruction (no finish() call). */
    void step(trace::TraceSink *sink = nullptr);

    /** True once HALT has retired. */
    bool halted() const { return halted_; }

    /** Current pc. */
    Addr pc() const { return pc_; }

    /** Unified-space register read (r0 reads as zero). */
    Word reg(RegIndex r) const;

    /** Unified-space register write (writes to r0 are ignored). */
    void setReg(RegIndex r, Word v);

    /** FPR read as a double (f is FPR numbering, 0..31). */
    double fprAsDouble(RegIndex f) const;

    /** Simulated memory, for test inspection and input poking. */
    SparseMemory &memory() { return mem_; }
    const SparseMemory &memory() const { return mem_; }

    /** Instructions retired since reset. */
    std::uint64_t retired() const { return retired_; }

    /** The bound program. */
    const isa::Program &program() const { return prog_; }

  private:
    void execute(const isa::Instruction &inst, trace::TraceRecord &rec);

    /** Execute and retire one instruction into @p rec. */
    void stepInto(trace::TraceRecord &rec);

    const isa::Program &prog_;
    SparseMemory mem_;
    std::array<Word, isa::NumRegs> regs_{};
    Addr pc_;
    std::uint64_t retired_ = 0;
    bool halted_ = false;
};

} // namespace lvplib::vm

#endif // LVPLIB_VM_INTERPRETER_HH

/**
 * @file
 * The VLISA functional interpreter. Executes a Program to completion
 * and streams one TraceRecord per retired instruction to a TraceSink —
 * this is lvplib's stand-in for the paper's TRIP6000/ATOM tracing
 * tools (user-state instruction, address, and value traces).
 */

#ifndef LVPLIB_VM_INTERPRETER_HH
#define LVPLIB_VM_INTERPRETER_HH

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "isa/instruction.hh"
#include "isa/program.hh"
#include "trace/trace.hh"
#include "vm/memory.hh"

namespace lvplib::vm
{

/** How Interpreter::run() dispatches instructions. */
enum class DispatchMode : std::uint8_t
{
    /** Decode operands from the Instruction on every step via the
     *  original switch core. Kept as the differential-testing oracle
     *  and the dispatch baseline for BM_InterpreterDispatch. */
    LegacySwitch,
    /** Execute from the predecoded DecodedInst array through a dense
     *  switch — portable to any compiler. */
    Predecoded,
    /** Predecoded array + computed-goto threading (GNU/Clang label
     *  addresses). Falls back to Predecoded when the build has no
     *  computed-goto core (see threadedGotoAvailable()). */
    ThreadedGoto,
};

/**
 * One statically predecoded instruction. Everything run() needs per
 * step — operands, cached destination register, pre-resolved BC
 * condition test, immediate — lives in this flat 32-byte record, so
 * the execution cores touch neither Instruction::destReg() nor
 * condHolds() on the hot path. Built once per Interpreter from the
 * bound Program; `src` points back at the program's Instruction so
 * emitted TraceRecords are indistinguishable from the legacy core's.
 */
struct DecodedInst
{
    isa::Opcode op;
    RegIndex rd;
    RegIndex rs1;
    RegIndex rs2;
    RegIndex dest;       ///< Instruction::destReg(), resolved once
    std::uint8_t crMask; ///< BC: CR bit under test (CrLt/CrGt/CrEq)
    bool crExpect;       ///< BC: taken when (cr & crMask) != 0 equals this
    std::int64_t imm;
    const isa::Instruction *src; ///< backing instruction (rec.inst)
};

/** Functional execution engine for one Program. */
class Interpreter
{
  public:
    /**
     * Bind to @p prog and initialize machine state: data image loaded,
     * r1 = stack top, r2 = the "__toc" symbol when the program defines
     * one, pc = entry. The static code is predecoded here, once.
     */
    explicit Interpreter(const isa::Program &prog);

    /** Reinitialize registers, memory, and pc. */
    void reset();

    /**
     * Run until HALT or until @p max_instrs retire. Each retired
     * instruction is passed to @p sink when non-null; sink->finish()
     * is called when the program halts.
     *
     * Records are accumulated into an internal retire buffer and
     * handed to sink->consumeBatch() (one virtual call per ~1 Ki
     * instructions) in retirement order. A sink that throws mid-batch
     * (e.g. WatchdogSink) observes exactly the records it would have
     * seen record-at-a-time; the interpreter itself may have retired
     * further instructions into the undelivered tail of the buffer,
     * which callers discard along with the failed run.
     *
     * All three dispatch modes produce bit-identical record streams,
     * register files, and memory images; they differ only in speed.
     *
     * @return Number of instructions retired by this call.
     */
    std::uint64_t run(trace::TraceSink *sink = nullptr,
                      std::uint64_t max_instrs =
                          std::numeric_limits<std::uint64_t>::max());

    /** Single-step one instruction (no finish() call). */
    void step(trace::TraceSink *sink = nullptr);

    /** Select the execution core used by run(). */
    void setDispatch(DispatchMode m) { dispatch_ = m; }

    /** The core run() currently uses. */
    DispatchMode dispatch() const { return dispatch_; }

    /** Fastest core compiled into this build. */
    static DispatchMode defaultDispatch();

    /** True when the computed-goto core was compiled in
     *  (LVPLIB_THREADED_DISPATCH on a GNU-compatible compiler). */
    static bool threadedGotoAvailable();

    /** True once HALT has retired. */
    bool halted() const { return halted_; }

    /** Current pc. */
    Addr pc() const { return pc_; }

    /** Unified-space register read (r0 reads as zero). */
    Word reg(RegIndex r) const;

    /** Unified-space register write (writes to r0 are ignored). */
    void setReg(RegIndex r, Word v);

    /** FPR read as a double (f is FPR numbering, 0..31). */
    double fprAsDouble(RegIndex f) const;

    /** Simulated memory, for test inspection and input poking. */
    SparseMemory &memory() { return mem_; }
    const SparseMemory &memory() const { return mem_; }

    /** Instructions retired since reset. */
    std::uint64_t retired() const { return retired_; }

    /** The bound program. */
    const isa::Program &program() const { return prog_; }

  private:
    void execute(const isa::Instruction &inst, trace::TraceRecord &rec);

    /** Execute and retire one instruction into @p rec. */
    void stepInto(trace::TraceRecord &rec);

    /** Build dcode_ from the bound program. */
    void predecode();

    std::uint64_t runLegacy(trace::TraceSink *sink,
                            std::uint64_t max_instrs);
    std::uint64_t runPredecoded(trace::TraceSink *sink,
                                std::uint64_t max_instrs);
    std::uint64_t runThreaded(trace::TraceSink *sink,
                              std::uint64_t max_instrs);

    const isa::Program &prog_;
    SparseMemory mem_;
    std::array<Word, isa::NumRegs> regs_{};
    std::vector<DecodedInst> dcode_;
    Addr pc_;
    std::uint64_t retired_ = 0;
    bool halted_ = false;
    DispatchMode dispatch_ = defaultDispatch();
};

} // namespace lvplib::vm

#endif // LVPLIB_VM_INTERPRETER_HH

/**
 * @file
 * Sparse, paged byte-addressable memory for the functional interpreter.
 * Pages are allocated on first touch and read as zero before any write,
 * so programs can use large, mostly-empty address ranges cheaply (the
 * sparse-matrix workloads depend on this).
 */

#ifndef LVPLIB_VM_MEMORY_HH
#define LVPLIB_VM_MEMORY_HH

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>

#include "isa/program.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace lvplib::vm
{

/**
 * Little-endian sparse memory with 4 KiB pages.
 *
 * The hot path is the interpreter issuing one read()/write() per
 * load/store. Two optimizations keep it out of the page hash map:
 * a one-entry page cache (workload accesses are strongly page-local,
 * so most lookups hit the page touched by the previous access), and
 * a word-granular memcpy for accesses that stay inside one page
 * (replacing the per-byte readByte/writeByte loop). Page storage is
 * heap-allocated behind unique_ptr, so cached Page pointers survive
 * hash-map rehashes; the cache is dropped on clear(), the only
 * operation that frees pages.
 */
class SparseMemory
{
  public:
    static constexpr unsigned PageShift = 12;
    static constexpr Addr PageSize = Addr(1) << PageShift;
    static constexpr Addr PageMask = PageSize - 1;

    SparseMemory() = default;

    /** Read one byte; untouched memory reads as zero. */
    std::uint8_t readByte(Addr a) const;

    /** Write one byte, allocating the page if needed. */
    void writeByte(Addr a, std::uint8_t v);

    /**
     * Read @p size bytes (1, 4, or 8) little-endian, zero-extended
     * into a Word. Accesses may span pages.
     *
     * Inlined so the interpreter's load path resolves a cached-page
     * hit (the overwhelmingly common case) without a function call;
     * misses, straddles, and big-endian hosts take readSlow().
     */
    Word
    read(Addr a, unsigned size) const
    {
        lvp_dassert(size == 1 || size == 4 || size == 8, "size=%u",
                    size);
        if constexpr (std::endian::native == std::endian::little) {
            Addr off = a & PageMask;
            if (off + size <= PageSize && cachedPage_ &&
                cachedPageNum_ == (a >> PageShift)) {
                Word v = 0;
                std::memcpy(&v, cachedPage_->data() + off, size);
                return v;
            }
        }
        return readSlow(a, size);
    }

    /** Write the low @p size bytes of @p v little-endian. */
    void
    write(Addr a, Word v, unsigned size)
    {
        lvp_dassert(size == 1 || size == 4 || size == 8, "size=%u",
                    size);
        if constexpr (std::endian::native == std::endian::little) {
            Addr off = a & PageMask;
            if (off + size <= PageSize && cachedPage_ &&
                cachedPageNum_ == (a >> PageShift)) {
                std::memcpy(cachedPage_->data() + off, &v, size);
                return;
            }
        }
        writeSlow(a, v, size);
    }

    /** Copy a program's initial data image into memory. */
    void loadImage(const isa::Program &prog);

    /** Read a NUL-terminated string (bounded at 64 KiB). */
    std::string readString(Addr a) const;

    /** Number of pages currently allocated. */
    std::size_t pageCount() const { return pages_.size(); }

    /**
     * Order-independent FNV-1a hash of the full memory image (page
     * numbers + contents, in ascending page order). Two memories with
     * identical contents hash identically regardless of allocation
     * order; used by the chaos campaign to compare final images bit
     * for bit.
     */
    std::uint64_t imageHash() const;

    /** Drop all contents. */
    void
    clear()
    {
        pages_.clear();
        cachedPage_ = nullptr;
    }

  private:
    using Page = std::array<std::uint8_t, PageSize>;

    const Page *findPage(Addr a) const;
    Page &touchPage(Addr a);

    Word readSlow(Addr a, unsigned size) const;
    void writeSlow(Addr a, Word v, unsigned size);

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;

    /**
     * One-entry cache of the most recently found allocated page.
     * Only ever caches present pages (never a miss), so a later
     * allocation cannot make it stale; clear() resets it.
     */
    mutable Addr cachedPageNum_ = 0;
    mutable Page *cachedPage_ = nullptr;
};

} // namespace lvplib::vm

#endif // LVPLIB_VM_MEMORY_HH

/**
 * @file
 * A generic set-associative cache model with LRU replacement. Only
 * tags are modeled (the functional interpreter holds the data); the
 * timing models query hit/miss and latency.
 */

#ifndef LVPLIB_MEM_CACHE_HH
#define LVPLIB_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace lvplib::mem
{

/** Geometry of one cache level. */
struct CacheConfig
{
    std::uint32_t sizeBytes = 32 * 1024;
    std::uint32_t assoc = 8;
    std::uint32_t lineBytes = 64;

    std::uint32_t numSets() const { return sizeBytes / (assoc * lineBytes); }
    void validate() const;
};

/** Tag-only set-associative cache with true-LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Access the line containing @p addr, allocating it on a miss
     * (write-allocate, fetch-on-write).
     *
     * @return true on hit.
     */
    bool access(Addr addr);

    /** Hit/miss check without any state change. */
    bool probe(Addr addr) const;

    /** Invalidate the line containing @p addr if present. */
    void invalidate(Addr addr);

    const CacheConfig &config() const { return config_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t accesses() const { return hits_ + misses_; }

    /** Miss ratio in percent. */
    double missRate() const;

    void reset();

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lastUse = 0; ///< LRU timestamp
    };

    std::uint32_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheConfig config_;
    std::uint32_t setShift_;   ///< log2(lineBytes)
    std::uint32_t setMask_;
    std::vector<Line> lines_;  ///< sets * assoc, row-major by set
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace lvplib::mem

#endif // LVPLIB_MEM_CACHE_HH

#include "mem/cache.hh"

#include <bit>

#include "util/logging.hh"
#include "util/stats.hh"

namespace lvplib::mem
{

void
CacheConfig::validate() const
{
    auto pow2 = [](std::uint32_t v) {
        return v != 0 && (v & (v - 1)) == 0;
    };
    if (!pow2(lineBytes) || lineBytes < 8)
        lvp_fatal("bad lineBytes %u", lineBytes);
    if (assoc == 0 || sizeBytes % (assoc * lineBytes) != 0)
        lvp_fatal("cache size %u not divisible by assoc*line", sizeBytes);
    if (!pow2(numSets()))
        lvp_fatal("cache sets (%u) must be a power of two", numSets());
}

Cache::Cache(const CacheConfig &config) : config_(config)
{
    config_.validate();
    setShift_ = static_cast<std::uint32_t>(
        std::countr_zero(config_.lineBytes));
    setMask_ = config_.numSets() - 1;
    lines_.assign(static_cast<std::size_t>(config_.numSets()) *
                      config_.assoc,
                  Line());
}

std::uint32_t
Cache::setIndex(Addr addr) const
{
    return static_cast<std::uint32_t>(addr >> setShift_) & setMask_;
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> setShift_;
}

bool
Cache::access(Addr addr)
{
    ++clock_;
    const Addr tag = tagOf(addr);
    Line *set = &lines_[static_cast<std::size_t>(setIndex(addr)) *
                        config_.assoc];
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Line &line = set[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = clock_;
            ++hits_;
            return true;
        }
    }
    // Miss: fill an invalid way, else the least-recently-used way.
    Line *victim = &set[0];
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Line &line = set[w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lastUse < victim->lastUse)
            victim = &line;
    }
    ++misses_;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = clock_;
    return false;
}

bool
Cache::probe(Addr addr) const
{
    const Addr tag = tagOf(addr);
    const Line *set = &lines_[static_cast<std::size_t>(setIndex(addr)) *
                              config_.assoc];
    for (std::uint32_t w = 0; w < config_.assoc; ++w)
        if (set[w].valid && set[w].tag == tag)
            return true;
    return false;
}

void
Cache::invalidate(Addr addr)
{
    const Addr tag = tagOf(addr);
    Line *set = &lines_[static_cast<std::size_t>(setIndex(addr)) *
                        config_.assoc];
    for (std::uint32_t w = 0; w < config_.assoc; ++w)
        if (set[w].valid && set[w].tag == tag)
            set[w].valid = false;
}

double
Cache::missRate() const
{
    return pct(misses_, accesses());
}

void
Cache::reset()
{
    for (auto &l : lines_)
        l = Line();
    clock_ = 0;
    hits_ = 0;
    misses_ = 0;
}

} // namespace lvplib::mem

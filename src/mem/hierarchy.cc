#include "mem/hierarchy.hh"

namespace lvplib::mem
{

HierarchyConfig
HierarchyConfig::ppc620()
{
    HierarchyConfig c;
    c.l1 = {32 * 1024, 8, 64};
    c.l2 = {1024 * 1024, 8, 64};
    c.banks = 2;
    c.l2Latency = 8;
    c.memLatency = 40;
    return c;
}

HierarchyConfig
HierarchyConfig::alpha21164()
{
    HierarchyConfig c;
    // 8K direct-mapped L1, 96K 3-way L2 on chip. We round the L2 to a
    // power-of-two set count (requirement of the tag model).
    c.l1 = {8 * 1024, 1, 32};
    c.l2 = {96 * 1024, 3, 64};
    c.banks = 2; // true dual-ported: the model never reports conflicts
    c.l2Latency = 8;
    c.memLatency = 40;
    return c;
}

MemHierarchy::MemHierarchy(const HierarchyConfig &config)
    : config_(config), l1_(config.l1), l2_(config.l2)
{}

AccessResult
MemHierarchy::access(Addr addr)
{
    AccessResult r;
    r.bank = bank(addr);
    r.l1Hit = l1_.access(addr);
    if (r.l1Hit)
        return r;
    r.l2Hit = l2_.access(addr);
    r.extraLatency = r.l2Hit ? config_.l2Latency
                             : config_.l2Latency + config_.memLatency;
    return r;
}

bool
MemHierarchy::touchIfPresent(Addr addr)
{
    if (!l1_.probe(addr))
        return false;
    l1_.access(addr);
    return true;
}

std::uint32_t
MemHierarchy::bank(Addr addr) const
{
    if (config_.banks <= 1)
        return 0;
    // Banks interleave on line granularity.
    return static_cast<std::uint32_t>(addr / config_.l1.lineBytes) %
           config_.banks;
}

void
MemHierarchy::reset()
{
    l1_.reset();
    l2_.reset();
}

} // namespace lvplib::mem

/**
 * @file
 * A two-level memory hierarchy latency model with a banked L1 data
 * cache, used by both timing models. The L1 hit latency is part of
 * the load's result latency (paper Table 5); this model returns the
 * EXTRA cycles a miss adds, plus the bank the access maps to so the
 * 620 model can detect bank conflicts (paper Section 6.5).
 */

#ifndef LVPLIB_MEM_HIERARCHY_HH
#define LVPLIB_MEM_HIERARCHY_HH

#include <cstdint>

#include "mem/cache.hh"
#include "util/types.hh"

namespace lvplib::mem
{

/** Parameters for the full hierarchy. */
struct HierarchyConfig
{
    CacheConfig l1{32 * 1024, 8, 64}; ///< 620 default: 32K 8-way
    CacheConfig l2{1024 * 1024, 8, 64};
    std::uint32_t banks = 2;          ///< L1 banks (620: dual-banked)
    std::uint32_t l2Latency = 8;      ///< extra cycles for an L1 miss/L2 hit
    std::uint32_t memLatency = 40;    ///< extra cycles for an L2 miss

    /** The 620/620+ hierarchy (32K 8-way L1, dual-banked). */
    static HierarchyConfig ppc620();

    /** The 21164 hierarchy (8K direct-mapped L1, dual-ported). */
    static HierarchyConfig alpha21164();
};

/** Outcome of one hierarchy access. */
struct AccessResult
{
    bool l1Hit = false;
    bool l2Hit = false;       ///< meaningful only when !l1Hit
    std::uint32_t extraLatency = 0; ///< cycles beyond the L1-hit latency
    std::uint32_t bank = 0;   ///< L1 bank this access maps to
};

class MemHierarchy
{
  public:
    explicit MemHierarchy(const HierarchyConfig &config);

    /** Perform (and record) one load or store access. */
    AccessResult access(Addr addr);

    /**
     * CVU-cancelled access: touch the L1 line (refresh LRU) when
     * present but do NOT fill on a miss and do NOT consult the L2 —
     * the paper's CVU match "cancels the subsequent retry or cache
     * miss".
     *
     * @return true when the line was present in the L1.
     */
    bool touchIfPresent(Addr addr);

    /** Bank an address maps to, without accessing. */
    std::uint32_t bank(Addr addr) const;

    const HierarchyConfig &config() const { return config_; }
    const Cache &l1() const { return l1_; }
    const Cache &l2() const { return l2_; }

    void reset();

  private:
    HierarchyConfig config_;
    Cache l1_;
    Cache l2_;
};

} // namespace lvplib::mem

#endif // LVPLIB_MEM_HIERARCHY_HH

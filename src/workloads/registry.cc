/**
 * @file
 * The benchmark registry: paper Table 1's rows mapped to our
 * synthetic workloads. "cc1-271" is the cc1 engine on a larger input,
 * as in the paper (GCC 2.7.1 vs GCC 1.35).
 */

#include "workloads/workload.hh"

#include "util/logging.hh"
#include "workloads/builders.hh"

namespace lvplib::workloads
{

namespace
{

isa::Program
buildCc1271(CodeGen cg, unsigned scale)
{
    // GCC 2.7.1 on genoutput.i vs GCC 1.35 on insn-recog.i: the newer
    // compiler's input is several times larger. (The IR generator
    // itself derives its shape from the scale, so the two rows see
    // different node mixes as well as different sizes.)
    return buildCc1(cg, 3 * scale);
}

const std::vector<Workload> &
registry()
{
    static const std::vector<Workload> table = {
        {"cc1-271", "GCC 2.7.1 (IR constant-folding pass)",
         "large synthetic IR list", &buildCc1271},
        {"cc1", "GCC 1.35 (IR constant-folding pass)",
         "synthetic IR list", &buildCc1},
        {"cjpeg", "JPEG encoder", "noisy greyscale image", &buildCjpeg},
        {"compress", "LZW-style compression", "repetitive text",
         &buildCompress},
        {"eqntott", "eqn-to-truth-table conversion",
         "8-variable postfix equation", &buildEqntott},
        {"gawk", "GNU awk (field/number parsing)",
         "simulator-result text", &buildGawk},
        {"gperf", "GNU perfect-hash generator", "24 C keywords",
         &buildGperf},
        {"grep", "gnu-grep -c", "random text with planted pattern",
         &buildGrep},
        {"mpeg", "Berkeley MPEG decoder (fast dithering)",
         "quantized frames + delta stream", &buildMpeg},
        {"perl", "SPEC95 anagram search", "40-word dictionary",
         &buildPerl},
        {"quick", "recursive quicksort", "pseudo-random elements",
         &buildQuick},
        {"sc", "spreadsheet recalculation", "16x8 formula sheet",
         &buildSc},
        {"xlisp", "LISP interpreter", "fixed expression tree",
         &buildXlisp},
        {"doduc", "Monte-Carlo reactor kernel",
         "16-group cross sections", &buildDoduc},
        {"hydro2d", "galactic-jet stencil relaxation",
         "sparse 24x24 grid", &buildHydro2d},
        {"swm256", "shallow-water model", "20x20 u/v/p fields",
         &buildSwm256},
        {"tomcatv", "mesh-generation relaxation",
         "distorted 20x20 mesh", &buildTomcatv},
    };
    return table;
}

} // namespace

const std::vector<Workload> &
allWorkloads()
{
    return registry();
}

const Workload &
findWorkload(const std::string &name)
{
    for (const auto &w : registry())
        if (w.name == name)
            return w;
    lvp_fatal("unknown workload '%s'", name.c_str());
}

} // namespace lvplib::workloads

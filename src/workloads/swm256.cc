/**
 * @file
 * "swm256" workload: a shallow-water model timestep — update
 * velocity (u,v) and pressure (p) fields from finite differences with
 * a time-varying forcing term.
 *
 * Every field value changes on every timestep, so the dominant static
 * loads rarely see a repeated value: the paper measures swm256 as one
 * of its three LOW-locality benchmarks.
 */

#include "workloads/common.hh"

#include <bit>

#include "util/rng.hh"

namespace lvplib::workloads
{

isa::Program
buildSwm256(CodeGen cg, unsigned scale)
{
    using namespace regs;
    Builder b(cg);
    isa::Assembler &a = b.a();

    constexpr unsigned N = 20;
    const unsigned steps = 2 * scale; // paper: 5 iterations (vs 1200)

    // ---- data --------------------------------------------------------
    a.dataLabel("__result");
    a.dspace(8);
    a.dalign(8);
    Addr u = a.dataLabel("ufield");
    a.dspace(N * N * 8);
    Addr v = a.dataLabel("vfield");
    a.dspace(N * N * 8);
    Addr p = a.dataLabel("pfield");
    a.dspace(N * N * 8);
    Rng rng(0x73776d32);
    for (unsigned i = 0; i < N * N; ++i) {
        a.pokeWord(u + i * 8, std::bit_cast<Word>(rng.uniform() - 0.5));
        a.pokeWord(v + i * 8, std::bit_cast<Word>(rng.uniform() - 0.5));
        a.pokeWord(p + i * 8,
                   std::bit_cast<Word>(50.0 + 10.0 * rng.uniform()));
    }

    // ---- code -----------------------------------------------------------
    // S0 u, S1 v, S2 p, S3 step, f2 dt, f3 g, f4 forcing (varies).
    b.loadAddr(S0, "ufield");
    b.loadAddr(S1, "vfield");
    b.loadAddr(S2, "pfield");
    a.li(S3, 0);
    b.loadFpConst(2, "dt", 0.01);
    b.loadFpConst(3, "g", 9.8);
    b.loadFpConst(4, "force", 0.003);

    a.label("step");
    a.li(S4, 1); // row
    a.label("row");
    a.li(S5, 1); // col
    a.label("col");
    // dt has no immediate form; the compiler re-loads it per cell
    // under FP register pressure (a constant FP load).
    b.loadFpConst(2, "dt", 0.01);
    a.li(T0, N);
    a.mull(T0, S4, T0);
    a.add(T0, T0, S5);
    a.sldi(T0, T0, 3);
    // u[i][j] += dt * (p[i][j-1] - p[i][j+1]) + force
    a.add(T1, T0, S2);
    a.lfd(5, -8, T1);
    a.lfd(6, 8, T1);
    a.fsub(5, 5, 6);
    a.fmul(5, 5, 2);
    a.fadd(5, 5, 4);
    a.add(T2, T0, S0);
    a.lfd(6, 0, T2); // u value: changes every step
    a.fadd(6, 6, 5);
    a.stfd(6, 0, T2);
    // v[i][j] += dt * (p[i-1][j] - p[i+1][j]) + force
    a.lfd(5, -static_cast<std::int64_t>(N) * 8, T1);
    a.lfd(7, static_cast<std::int64_t>(N) * 8, T1);
    a.fsub(5, 5, 7);
    a.fmul(5, 5, 2);
    a.fadd(5, 5, 4);
    a.add(T2, T0, S1);
    a.lfd(7, 0, T2); // v value: changes every step
    a.fadd(7, 7, 5);
    a.stfd(7, 0, T2);
    // p[i][j] -= dt * g * (u + v)
    a.fadd(6, 6, 7);
    a.fmul(6, 6, 2);
    a.fmul(6, 6, 3);
    a.lfd(5, 0, T1); // p value: changes every step
    a.fsub(5, 5, 6);
    a.stfd(5, 0, T1);
    a.addi(S5, S5, 1);
    a.cmpi(0, S5, N - 1);
    a.bc(isa::Cond::LT, 0, "col");
    a.addi(S4, S4, 1);
    a.cmpi(0, S4, N - 1);
    a.bc(isa::Cond::LT, 0, "row");
    // time-varying forcing so the fields never settle
    a.fadd(4, 4, 2);
    a.addi(S3, S3, 1);
    a.cmpi(0, S3, static_cast<std::int64_t>(steps));
    a.bc(isa::Cond::LT, 0, "step");

    // checksum over p
    a.li(T0, 0);
    a.li(S4, 0);
    b.loadFpConst(3, "ckscale", 64.0);
    a.label("ck");
    a.sldi(T1, T0, 3);
    a.add(T1, T1, S2);
    a.lfd(1, 0, T1);
    a.fmul(1, 1, 3);
    a.fctid(T2, 1);
    a.add(S4, S4, T2);
    a.addi(T0, T0, 1);
    a.cmpi(0, T0, N * N);
    a.bc(isa::Cond::LT, 0, "ck");
    b.loadAddr(T0, "__result");
    a.std_(S4, 0, T0);
    a.halt();

    return b.finish();
}

} // namespace lvplib::workloads

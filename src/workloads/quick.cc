/**
 * @file
 * "quick" workload: recursive quicksort of pseudo-random elements
 * (the paper sorts 5,000 random elements).
 *
 * Value-locality sources: deep recursion makes the prologue/epilogue
 * link-register and callee-save restores dominate the static loads
 * (call-subgraph identities, spill code); the array-element loads
 * themselves vary. The paper notes quick gains mostly from the Limit
 * and Perfect configurations.
 */

#include "workloads/common.hh"

#include "util/rng.hh"

namespace lvplib::workloads
{

isa::Program
buildQuick(CodeGen cg, unsigned scale)
{
    using namespace regs;
    Builder b(cg);
    isa::Assembler &a = b.a();

    const std::size_t n = 400 * scale;

    // ---- data --------------------------------------------------------
    a.dataLabel("__result");
    a.dspace(8);
    a.dalign(8);
    Addr arr = a.dataLabel("arr");
    a.dspace(n * 8);
    Rng rng(0x7175636b);
    for (std::size_t i = 0; i < n; ++i)
        a.pokeWord(arr + i * 8, rng.below(1000000));

    // ---- main ----------------------------------------------------------
    // S7 = array base kept across the whole program.
    b.loadAddr(S7, "arr");
    a.li(A0, 0);
    b.loadConst(A1, "nminus1", static_cast<std::int64_t>(n - 1));
    a.bl("qsort");
    // checksum: sum a[i]*(i+1) over the sorted array
    a.li(T0, 0); // i
    a.li(S0, 0); // sum
    b.loadConst(S1, "n", static_cast<std::int64_t>(n));
    a.label("ckloop");
    a.sldi(T1, T0, 3);
    a.add(T1, T1, S7);
    a.ld(T1, 0, T1);
    a.addi(T2, T0, 1);
    a.mull(T1, T1, T2);
    a.add(S0, S0, T1);
    a.addi(T0, T0, 1);
    a.cmp(0, T0, S1);
    a.bc(isa::Cond::LT, 0, "ckloop");
    b.loadAddr(T0, "__result");
    a.std_(S0, 0, T0);
    a.halt();

    // ---- qsort(lo=A0, hi=A1): Hoare partition, recursive --------------
    b.prologue("qsort", 3);
    a.mr(S0, A0); // lo
    a.mr(S1, A1); // hi
    a.cmp(0, S0, S1);
    a.bc(isa::Cond::GE, 0, "qret");

    // pivot = a[(lo+hi)/2]
    a.add(T0, S0, S1);
    a.srdi(T0, T0, 1);
    a.sldi(T0, T0, 3);
    a.add(T0, T0, S7);
    a.ld(S2, 0, T0); // pivot in S2
    // The pivot is also spilled to the frame; the scan loops reload
    // it each iteration (register spill code: the reloaded value is
    // constant for the whole partition pass).
    a.std_(S2, 24, Sp);

    // i = lo-1 (A2), j = hi+1 (A3)
    a.addi(A2, S0, -1);
    a.addi(A3, S1, 1);
    a.label("part");
    // do ++i while a[i] < pivot
    a.label("upscan");
    a.addi(A2, A2, 1);
    a.sldi(T0, A2, 3);
    a.add(T0, T0, S7);
    a.ld(T1, 0, T0);
    a.ld(A0, 24, Sp); // spilled pivot: constant per invocation
    a.cmp(0, T1, A0);
    a.bc(isa::Cond::LT, 0, "upscan");
    // do --j while a[j] > pivot
    a.label("downscan");
    a.addi(A3, A3, -1);
    a.sldi(T0, A3, 3);
    a.add(T0, T0, S7);
    a.ld(T2, 0, T0);
    a.ld(A0, 24, Sp);
    a.cmp(0, T2, A0);
    a.bc(isa::Cond::GT, 0, "downscan");
    // if i >= j: partition point found
    a.cmp(0, A2, A3);
    a.bc(isa::Cond::GE, 0, "partdone");
    // swap a[i], a[j]  (T1 = a[i], T2 = a[j] already loaded)
    a.sldi(T0, A2, 3);
    a.add(T0, T0, S7);
    a.std_(T2, 0, T0);
    a.sldi(T0, A3, 3);
    a.add(T0, T0, S7);
    a.std_(T1, 0, T0);
    a.b("part");

    a.label("partdone");
    // qsort(lo, j); qsort(j+1, hi)
    a.mr(A0, S0);
    a.mr(A1, A3);
    a.mr(S0, A3); // keep j across the first call in S0
    a.bl("qsort");
    a.addi(A0, S0, 1);
    a.mr(A1, S1);
    a.bl("qsort");

    a.label("qret");
    b.epilogue();

    return b.finish();
}

} // namespace lvplib::workloads

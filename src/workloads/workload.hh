/**
 * @file
 * The benchmark-suite interface: one Workload per paper Table 1 row.
 *
 * Each workload is a real VLISA program implementing the same
 * algorithmic kernel as the paper's benchmark, built for one of two
 * code-generation conventions (the stand-ins for the paper's
 * PowerPC/AIX and Alpha/OSF toolchains). Programs store a final
 * checksum at the "__result" symbol so functional tests can verify
 * them against C++ reference implementations.
 */

#ifndef LVPLIB_WORKLOADS_WORKLOAD_HH
#define LVPLIB_WORKLOADS_WORKLOAD_HH

#include <string>
#include <vector>

#include "isa/program.hh"

namespace lvplib::workloads
{

/** Code-generation convention (paper Section 5: two ISAs/compilers). */
enum class CodeGen
{
    Ppc,   ///< TOC-based addressing, constants loaded from memory
    Alpha, ///< more immediate synthesis, GOT-style addressing
};

const char *codeGenName(CodeGen cg);

/** One benchmark: metadata plus a program builder. */
struct Workload
{
    std::string name;        ///< paper benchmark name (e.g. "grep")
    std::string description; ///< paper Table 1 description
    std::string input;       ///< our synthetic-input description

    /**
     * Build the program. @p scale multiplies the input size /
     * iteration count; 1 is the unit-test size, benchmarks typically
     * run at 8-64.
     */
    isa::Program (*build)(CodeGen cg, unsigned scale);
};

/** All benchmarks, in the paper's Table 1 order. */
const std::vector<Workload> &allWorkloads();

/** Find a benchmark by name; fatal when unknown. */
const Workload &findWorkload(const std::string &name);

} // namespace lvplib::workloads

#endif // LVPLIB_WORKLOADS_WORKLOAD_HH

/**
 * @file
 * "hydro2d" workload: 2-D hydrodynamical relaxation of a galactic-jet
 * grid — a five-point stencil over a field that is zero almost
 * everywhere except a small active jet region.
 *
 * Value-locality sources: the vast majority of stencil loads read
 * cells that are and stay (near) zero — classic sparse-data
 * redundancy — plus the grid-geometry constants. The paper measures
 * hydro2d among the higher-locality FP codes.
 */

#include "workloads/common.hh"

#include <bit>

namespace lvplib::workloads
{

isa::Program
buildHydro2d(CodeGen cg, unsigned scale)
{
    using namespace regs;
    Builder b(cg);
    isa::Assembler &a = b.a();

    constexpr unsigned N = 24;          // grid edge (with halo)
    const unsigned iters = 2 * scale;

    // ---- data ----------------------------------------------------------
    a.dataLabel("__result");
    a.dspace(8);
    a.dalign(8);
    Addr src = a.dataLabel("gridA");
    a.dspace(N * N * 8);
    a.dataLabel("gridB");
    a.dspace(N * N * 8);
    // Active jet: a 3x3 hot spot near one edge; everything else 0.
    for (unsigned i = 10; i < 13; ++i)
        for (unsigned j = 2; j < 5; ++j)
            a.pokeWord(src + (i * N + j) * 8,
                       std::bit_cast<Word>(100.0 + 3.0 * i + j));

    // ---- code -----------------------------------------------------------
    // Ping-pong between gridA and gridB. S0 = src, S1 = dst,
    // S2 iter counter, f2 = 0.249 diffusion factor.
    b.loadAddr(S0, "gridA");
    b.loadAddr(S1, "gridB");
    a.li(S2, 0);
    b.loadFpConst(2, "factor", 0.249);

    a.label("iter");
    a.li(S3, 1); // row
    a.label("row");
    a.li(S4, 1); // col
    a.label("col");
    // addr = base + (row*N + col)*8
    a.li(T0, N);
    a.mull(T0, S3, T0);
    a.add(T0, T0, S4);
    a.sldi(T0, T0, 3);
    a.add(T1, T0, S0); // &src[r][c]
    // five-point stencil: mostly-zero loads
    a.lfd(3, -8, T1);
    a.lfd(4, 8, T1);
    a.lfd(5, -static_cast<std::int64_t>(N) * 8, T1);
    a.lfd(6, static_cast<std::int64_t>(N) * 8, T1);
    a.fadd(3, 3, 4);
    a.fadd(5, 5, 6);
    a.fadd(3, 3, 5);
    a.fmul(3, 3, 2); // new = 0.249 * (sum of neighbours)
    a.add(T2, T0, S1);
    a.stfd(3, 0, T2);
    a.addi(S4, S4, 1);
    a.cmpi(0, S4, N - 1);
    a.bc(isa::Cond::LT, 0, "col");
    a.addi(S3, S3, 1);
    a.cmpi(0, S3, N - 1);
    a.bc(isa::Cond::LT, 0, "row");
    // swap src/dst
    a.mr(T0, S0);
    a.mr(S0, S1);
    a.mr(S1, T0);
    a.addi(S2, S2, 1);
    a.cmpi(0, S2, static_cast<std::int64_t>(iters));
    a.bc(isa::Cond::LT, 0, "iter");

    // checksum: integer-truncated sum over the final grid
    a.li(T0, 0);  // index
    a.li(S4, 0);  // sum
    a.label("ck");
    a.sldi(T1, T0, 3);
    a.add(T1, T1, S0);
    a.lfd(1, 0, T1);
    b.loadFpConst(3, "ckscale", 1024.0);
    a.fmul(1, 1, 3);
    a.fctid(T2, 1);
    a.add(S4, S4, T2);
    a.addi(T0, T0, 1);
    a.cmpi(0, T0, N * N);
    a.bc(isa::Cond::LT, 0, "ck");
    b.loadAddr(T0, "__result");
    a.std_(S4, 0, T0);
    a.halt();

    return b.finish();
}

} // namespace lvplib::workloads

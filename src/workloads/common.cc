#include "workloads/common.hh"

#include <bit>

#include "util/logging.hh"

namespace lvplib::workloads
{

const char *
codeGenName(CodeGen cg)
{
    return cg == CodeGen::Ppc ? "ppc" : "alpha";
}

namespace
{
constexpr std::size_t TocSlots = 512;
} // namespace

Builder::Builder(CodeGen cg) : cg_(cg)
{
    // Reserve the TOC region up front; slot values are poked in at
    // finish(). The interpreter initializes r2 to "__toc".
    asm_.dalign(8);
    tocBase_ = asm_.dataLabel("__toc");
    asm_.dspace(TocSlots * 8);
}

std::int64_t
Builder::tocSlot(const std::string &key, Word value)
{
    auto it = tocIndex_.find(key);
    if (it != tocIndex_.end())
        return it->second;
    if (tocEntries_.size() >= TocSlots)
        lvp_fatal("TOC overflow (%zu slots)", TocSlots);
    auto off = static_cast<std::int64_t>(tocEntries_.size() * 8);
    tocEntries_.emplace_back(key, value);
    tocIndex_[key] = off;
    return off;
}

void
Builder::loadAddr(RegIndex rd, const std::string &sym)
{
    if (cg_ == CodeGen::Ppc) {
        std::int64_t off = tocSlot("addr:" + sym, asm_.symbolAddr(sym));
        asm_.ld(rd, off, regs::Toc, isa::DataClass::DataAddr);
    } else {
        asm_.la(rd, sym);
    }
}

void
Builder::loadConst(RegIndex rd, const std::string &key, std::int64_t value)
{
    if (value >= isa::ImmMin && value <= isa::ImmMax) {
        asm_.li(rd, value);
        return;
    }
    if (cg_ == CodeGen::Ppc) {
        std::int64_t off = tocSlot("const:" + key,
                                   static_cast<Word>(value));
        asm_.ld(rd, off, regs::Toc, isa::DataClass::IntData);
    } else {
        asm_.li(rd, value);
    }
}

void
Builder::loadFpConst(RegIndex fd, const std::string &key, double value,
                     RegIndex tmp)
{
    std::int64_t off = tocSlot("fp:" + key, std::bit_cast<Word>(value));
    if (cg_ == CodeGen::Ppc) {
        asm_.lfd(fd, off, regs::Toc);
    } else {
        asm_.la(tmp, "__toc");
        asm_.lfd(fd, off, tmp);
    }
}

RegIndex
Builder::loopConst(RegIndex rd, const std::string &key,
                   std::int64_t value, RegIndex hoisted)
{
    // Alpha-style codegen synthesizes 32-bit values with lda/ldah
    // pairs (hoisted here), but loads full 64-bit literals from the
    // .lita pool through $gp — the same memory idiom as a TOC.
    // PPC-style codegen loads either through the TOC.
    bool fits32 = value >= INT32_MIN && value <= INT32_MAX;
    if (cg_ == CodeGen::Alpha && fits32)
        return hoisted;
    std::int64_t off = tocSlot("const:" + key, static_cast<Word>(value));
    asm_.ld(rd, off, regs::Toc, isa::DataClass::IntData);
    return rd;
}

void
Builder::prologue(const std::string &name, unsigned saved)
{
    lvp_assert(saved <= 8, "too many callee-saved registers");
    asm_.label(name);
    unsigned frame = 16 + 8 * saved;
    asm_.addi(regs::Sp, regs::Sp, -static_cast<std::int64_t>(frame));
    asm_.mflr(regs::T1);
    asm_.std_(regs::T1, frame - 8, regs::Sp);
    for (unsigned i = 0; i < saved; ++i)
        asm_.std_(static_cast<RegIndex>(regs::S0 + i), 8 * i, regs::Sp);
    frameSaved_.push_back(saved);
}

void
Builder::epilogue()
{
    lvp_assert(!frameSaved_.empty(), "epilogue without prologue");
    unsigned saved = frameSaved_.back();
    frameSaved_.pop_back();
    unsigned frame = 16 + 8 * saved;
    for (unsigned i = 0; i < saved; ++i) {
        // Callee-save restores: the paper's "register spill code" /
        // "call-subgraph identity" loads.
        asm_.ld(static_cast<RegIndex>(regs::S0 + i), 8 * i, regs::Sp,
                isa::DataClass::IntData);
    }
    // Link-register restore: an instruction-address load.
    asm_.ld(regs::T1, frame - 8, regs::Sp, isa::DataClass::InstAddr);
    asm_.mtlr(regs::T1);
    asm_.addi(regs::Sp, regs::Sp, frame);
    asm_.blr();
}

void
Builder::callIndirect(RegIndex rt)
{
    asm_.mtctr(rt);
    asm_.bctrl();
}

void
Builder::switchJump(RegIndex rt, RegIndex tmp,
                    const std::vector<std::string> &case_labels)
{
    lvp_assert(!case_labels.empty());
    std::string sym = "__jt" + std::to_string(jtCounter_++);
    asm_.dalign(8);
    asm_.dataLabel(sym);
    asm_.dspace(case_labels.size() * 8);
    jumpTables_.push_back({sym, case_labels});

    asm_.sldi(rt, rt, 3);
    loadAddr(tmp, sym);
    asm_.add(tmp, tmp, rt);
    // The jump-table entry is an instruction address.
    asm_.ld(tmp, 0, tmp, isa::DataClass::InstAddr);
    asm_.mtctr(tmp);
    asm_.bctr();
}

isa::Program
Builder::finish()
{
    lvp_assert(frameSaved_.empty(), "unbalanced prologue/epilogue");
    for (std::size_t i = 0; i < tocEntries_.size(); ++i)
        asm_.pokeWord(tocBase_ + i * 8, tocEntries_[i].second);
    for (const auto &jt : jumpTables_) {
        Addr base = asm_.symbolAddr(jt.dataSym);
        for (std::size_t i = 0; i < jt.labels.size(); ++i)
            asm_.pokeWord(base + i * 8, asm_.symbolAddr(jt.labels[i]));
    }
    return asm_.finish();
}

void
fillWords(isa::Assembler &a, Addr base, const std::vector<Word> &words)
{
    for (std::size_t i = 0; i < words.size(); ++i)
        a.pokeWord(base + i * 8, words[i]);
}

} // namespace lvplib::workloads

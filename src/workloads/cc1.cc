/**
 * @file
 * "cc1" workload: a compiler IR pass — walk a linked list of
 * expression nodes, dispatch on the opcode, and constant-fold nodes
 * whose operands are both literal (the paper runs GCC on .i files;
 * cc1-271 is the same engine on a larger input).
 *
 * Value-locality sources: node opcodes and operand-kind flags never
 * change (error-checking loads of run-time constants), dispatch goes
 * through a jump table (instruction-address loads), and the next
 * pointers of the list are constant (data-address loads / pointer
 * chasing).
 */

#include "workloads/common.hh"

#include "util/rng.hh"

namespace lvplib::workloads
{

isa::Program
buildCc1(CodeGen cg, unsigned scale)
{
    using namespace regs;
    Builder b(cg);
    isa::Assembler &a = b.a();

    const unsigned nodes = 64 + 16 * scale;
    const unsigned passes = 4 * scale;

    // ---- data -------------------------------------------------------
    // Node (48 bytes): {op, kind1, kind2, v1, v2, next}.
    // op: 0 add, 1 sub, 2 mul, 3 shift, 4 cmp, 5 nop.
    // kindN: 1 when vN is a literal constant.
    a.dataLabel("__result");
    a.dspace(8);
    a.dalign(8);
    Addr pool = a.dataLabel("irnodes");
    a.dspace(static_cast<std::size_t>(nodes) * 48);
    Rng rng(0x63633145);
    for (unsigned i = 0; i < nodes; ++i) {
        Addr at = pool + static_cast<Addr>(i) * 48;
        a.pokeWord(at + 0, rng.below(6));
        // ~30% of operands are literals, so ~9% of nodes fold.
        a.pokeWord(at + 8, rng.below(100) < 30 ? 1 : 0);
        a.pokeWord(at + 16, rng.below(100) < 30 ? 1 : 0);
        a.pokeWord(at + 24, rng.below(512));
        a.pokeWord(at + 32, 1 + rng.below(31));
        a.pokeWord(at + 40, i + 1 < nodes
                                ? at + 48
                                : 0); // next pointer (NULL at end)
    }

    // ---- main -----------------------------------------------------------
    // S5 pass counter, S6 fold count, S7 value accumulator.
    a.li(S5, 0);
    a.li(S6, 0);
    a.li(S7, 0);
    b.loadConst(S4, "passes", passes);

    a.label("pass");
    b.loadAddr(S0, "irnodes"); // current node

    a.label("walk");
    a.cmpi(0, S0, 0);
    a.bc(isa::Cond::EQ, 0, "endpass");
    a.ld(T0, 0, S0); // opcode: constant
    b.switchJump(T0, T1, {"oadd", "osub", "omul", "oshift",
                          "ocmp", "onop"});

    a.label("oadd");
    a.bl("tryfold");
    a.cmpi(0, A0, 0);
    a.bc(isa::Cond::EQ, 0, "next");
    a.ld(T1, 24, S0);
    a.ld(T2, 32, S0);
    a.add(T1, T1, T2);
    a.add(S7, S7, T1);
    a.addi(S6, S6, 1);
    a.b("next");

    a.label("osub");
    a.bl("tryfold");
    a.cmpi(0, A0, 0);
    a.bc(isa::Cond::EQ, 0, "next");
    a.ld(T1, 24, S0);
    a.ld(T2, 32, S0);
    a.sub(T1, T1, T2);
    a.add(S7, S7, T1);
    a.addi(S6, S6, 1);
    a.b("next");

    a.label("omul");
    a.bl("tryfold");
    a.cmpi(0, A0, 0);
    a.bc(isa::Cond::EQ, 0, "next");
    a.ld(T1, 24, S0);
    a.ld(T2, 32, S0);
    a.mull(T1, T1, T2);
    a.add(S7, S7, T1);
    a.addi(S6, S6, 1);
    a.b("next");

    a.label("oshift");
    a.bl("tryfold");
    a.cmpi(0, A0, 0);
    a.bc(isa::Cond::EQ, 0, "next");
    a.ld(T1, 24, S0);
    a.ld(T2, 32, S0);
    a.andi(T2, T2, 15);
    a.sld(T1, T1, T2);
    a.add(S7, S7, T1);
    a.addi(S6, S6, 1);
    a.b("next");

    a.label("ocmp");
    a.bl("tryfold");
    a.cmpi(0, A0, 0);
    a.bc(isa::Cond::EQ, 0, "next");
    a.ld(T1, 24, S0);
    a.ld(T2, 32, S0);
    a.cmp(1, T1, T2);
    a.bc(isa::Cond::LT, 1, "cmplt");
    a.addi(S7, S7, 1);
    a.label("cmplt");
    a.addi(S6, S6, 1);
    a.b("next");

    a.label("onop");
    // nothing to do

    a.label("next");
    a.ld(S0, 40, S0, isa::DataClass::DataAddr); // next ptr: constant
    a.b("walk");

    a.label("endpass");
    a.addi(S5, S5, 1);
    a.cmp(0, S5, S4);
    a.bc(isa::Cond::LT, 0, "pass");

    // result = (folds << 32) + (accumulator & 0xffffffff)
    a.sldi(T0, S6, 32);
    a.li(T1, -1);
    a.srdi(T1, T1, 32);
    a.and_(T1, S7, T1);
    a.add(T0, T0, T1);
    b.loadAddr(T1, "__result");
    a.std_(T0, 0, T1);
    a.halt();

    // ---- tryfold(node in S0) -> A0 = 1 when both operands literal ---
    b.prologue("tryfold", 0);
    a.ld(T1, 8, S0);  // kind1: error-check load, mostly 0
    a.ld(T2, 16, S0); // kind2
    a.and_(A0, T1, T2);
    b.epilogue();

    return b.finish();
}

} // namespace lvplib::workloads

/**
 * @file
 * "xlisp" workload: a tiny expression interpreter evaluating a fixed
 * s-expression tree thousands of times (the paper runs the SPEC92
 * LISP interpreter on 6-queens).
 *
 * Value-locality sources: the tree's tag/child/value fields never
 * change between evaluations (run-time constants), the evaluator
 * dispatches through a jump table (instruction-address loads), and
 * deep recursion produces link-register and callee-save restores.
 */

#include "workloads/common.hh"

#include "util/rng.hh"

namespace lvplib::workloads
{

namespace
{

/** Node tags understood by the evaluator. */
enum Tag : Word
{
    TagConst = 0,
    TagAdd = 1,
    TagSub = 2,
    TagMul = 3,
    TagIf = 4, ///< (if left!=0 then right.left else right.right)
};

struct TreeGen
{
    isa::Assembler &a;
    Rng rng{0x6c697370};
    Addr base;
    std::size_t next = 0;
    std::size_t capacity;

    /** Allocate one 32-byte node {tag, val, left, right}. */
    Addr
    node(Word tag, Word val, Addr left, Addr right)
    {
        Addr at = base + next * 32;
        next++;
        a.pokeWord(at + 0, tag);
        a.pokeWord(at + 8, val);
        a.pokeWord(at + 16, left);
        a.pokeWord(at + 24, right);
        return at;
    }

    /** Build a random expression tree of the given depth. */
    Addr
    build(unsigned depth)
    {
        if (depth == 0 || rng.chance(1, 5) || next + 8 > capacity)
            return node(TagConst, rng.below(100), 0, 0);
        // Children are built left-to-right explicitly: C++ argument
        // evaluation order is unspecified and must not leak into the
        // generated program.
        switch (rng.below(4)) {
          case 0: {
            Addr l = build(depth - 1);
            Addr r = build(depth - 1);
            return node(TagAdd, 0, l, r);
          }
          case 1: {
            Addr l = build(depth - 1);
            Addr r = build(depth - 1);
            return node(TagSub, 0, l, r);
          }
          case 2: {
            Addr l = build(depth - 1);
            Addr r = build(depth - 1);
            return node(TagMul, 0, l, r);
          }
          default: {
            Addr then_arm = build(depth - 1);
            Addr else_arm = build(depth - 1);
            Addr arms = node(TagConst, 0, then_arm, else_arm);
            Addr cond = build(depth - 1);
            return node(TagIf, 0, cond, arms);
          }
        }
    }
};

} // namespace

isa::Program
buildXlisp(CodeGen cg, unsigned scale)
{
    using namespace regs;
    Builder b(cg);
    isa::Assembler &a = b.a();

    const unsigned evals = 12 * scale;

    // ---- data ---------------------------------------------------------
    a.dataLabel("__result");
    a.dspace(8);
    a.dalign(8);
    Addr rootptr = a.dataLabel("rootptr"); // for external inspection
    a.dspace(8);
    Addr heap = a.dataLabel("nodes");
    constexpr std::size_t MaxNodes = 8192;
    a.dspace(MaxNodes * 32);
    TreeGen gen{.a = a, .base = heap, .capacity = MaxNodes};
    Addr root = gen.build(7);
    a.pokeWord(rootptr, root);

    // ---- main ----------------------------------------------------------
    // S5 = evals remaining, S6 = accumulator, S7 = root.
    b.loadConst(S7, "root", static_cast<std::int64_t>(root));
    a.li(S6, 0);
    b.loadConst(S5, "evals", evals);

    a.label("evalrep");
    a.mr(A0, S7);
    a.bl("eval");
    a.add(S6, S6, A0);
    a.addi(S5, S5, -1);
    a.cmpi(0, S5, 0);
    a.bc(isa::Cond::GT, 0, "evalrep");

    b.loadAddr(T0, "__result");
    a.std_(S6, 0, T0);
    a.halt();

    // ---- eval(node=A0) -> A0 -------------------------------------------
    b.prologue("eval", 2);
    a.mr(S0, A0);
    a.ld(T0, 0, S0); // tag: a run-time constant per node
    b.switchJump(T0, T2,
                 {"tconst", "tadd", "tsub", "tmul", "tif"});

    a.label("tconst");
    a.ld(A0, 8, S0); // node value: constant
    a.b("evalret");

    a.label("tadd");
    a.ld(A0, 16, S0, isa::DataClass::DataAddr); // left child ptr
    a.bl("eval");
    a.mr(S1, A0);
    a.ld(A0, 24, S0, isa::DataClass::DataAddr); // right child ptr
    a.bl("eval");
    a.add(A0, S1, A0);
    a.b("evalret");

    a.label("tsub");
    a.ld(A0, 16, S0, isa::DataClass::DataAddr);
    a.bl("eval");
    a.mr(S1, A0);
    a.ld(A0, 24, S0, isa::DataClass::DataAddr);
    a.bl("eval");
    a.sub(A0, S1, A0);
    a.b("evalret");

    a.label("tmul");
    a.ld(A0, 16, S0, isa::DataClass::DataAddr);
    a.bl("eval");
    a.mr(S1, A0);
    a.ld(A0, 24, S0, isa::DataClass::DataAddr);
    a.bl("eval");
    a.mull(A0, S1, A0);
    // keep values small so repeated evals don't overflow
    a.sradi(A0, A0, 4);
    a.b("evalret");

    a.label("tif");
    a.ld(A0, 16, S0, isa::DataClass::DataAddr); // condition subtree
    a.bl("eval");
    a.ld(S1, 24, S0, isa::DataClass::DataAddr); // arms node
    a.cmpi(0, A0, 0);
    a.bc(isa::Cond::NE, 0, "ifthen");
    a.ld(A0, 24, S1, isa::DataClass::DataAddr); // else arm
    a.bl("eval");
    a.b("evalret");
    a.label("ifthen");
    a.ld(A0, 16, S1, isa::DataClass::DataAddr); // then arm
    a.bl("eval");

    a.label("evalret");
    b.epilogue();

    return b.finish();
}

} // namespace lvplib::workloads

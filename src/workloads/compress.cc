/**
 * @file
 * "compress" workload: an LZW-style compressor over repetitive text
 * (the paper compresses a SPEC92 input at 1/2 compression).
 *
 * Value-locality sources: dictionary-probe loads hit mostly-stable
 * entries once the dictionary warms up, hash constants come from the
 * TOC, and the input text has heavy data redundancy (repeated words
 * and whitespace).
 */

#include "workloads/common.hh"

#include "util/rng.hh"

namespace lvplib::workloads
{

isa::Program
buildCompress(CodeGen cg, unsigned scale)
{
    using namespace regs;
    Builder b(cg);
    isa::Assembler &a = b.a();

    const std::size_t text_len = 2200 * scale;
    constexpr unsigned DictBits = 12;
    constexpr unsigned DictEntries = 1u << DictBits; // (key,code) pairs

    // ---- data ---------------------------------------------------------
    a.dataLabel("__result");
    a.dspace(8);
    a.dalign(8);
    a.dataLabel("dict"); // 16 bytes per entry: key dword, code dword
    a.dspace(DictEntries * 16);
    a.dataLabel("text");
    static const char *const words[] = {
        "the", "compress", "value", "of", "a", "locality", "stream",
        "data", "in", "and",
    };
    Rng rng(0x636d7072);
    std::size_t written = 0;
    while (written < text_len) {
        const char *w = words[rng.below(10)];
        for (const char *p = w; *p && written < text_len; ++p, ++written)
            a.db(static_cast<std::uint8_t>(*p));
        if (written < text_len) {
            a.db(rng.chance(1, 10) ? '\n' : ' ');
            ++written;
        }
    }
    a.db(0);

    // ---- code -----------------------------------------------------------
    // LZW: prefix = first byte; for each next byte c:
    //   key = (prefix << 9) | c; probe dict linearly from hash(key):
    //     hit  -> prefix = entry code
    //     free -> emit prefix (sum += prefix, ++count),
    //             store (key, nextcode++), prefix = c
    // Registers: S0 text ptr, S1 dict base, S2 prefix, S3 sum,
    // S4 nextcode, S5 text end, S6 hash multiplier, S7 count.
    const auto text_end =
        static_cast<std::int64_t>(a.symbolAddr("text") + text_len);
    const auto hash_mul =
        static_cast<std::int64_t>(0x9E3779B97F4A7C15ull);
    b.loadAddr(S0, "text");
    b.loadAddr(S1, "dict");
    b.loadConst(S5, "textend", text_end);
    b.loadConst(S6, "hashmul", hash_mul);
    a.li(S3, 0);
    a.li(S7, 0);
    a.li(S4, 256);
    a.lbz(S2, 0, S0); // first byte
    a.addi(S0, S0, 1);

    a.label("mainloop");
    // PPC codegen re-loads the loop bound and hash constant from the
    // TOC each iteration (register-pressure idiom, high locality).
    RegIndex end_r = b.loopConst(A2, "textend", text_end, S5);
    a.cmpu(0, S0, end_r);
    a.bc(isa::Cond::GE, 0, "flush");
    a.lbz(T0, 0, S0); // input byte (redundant data)
    a.addi(S0, S0, 1);
    // key = (prefix << 9) | c
    a.sldi(T1, S2, 9);
    a.or_(T1, T1, T0);
    // h = (key * mul) >> (64 - DictBits)
    RegIndex mul_r = b.loopConst(A3, "hashmul", hash_mul, S6);
    a.mull(T2, T1, mul_r);
    a.srdi(T2, T2, 64 - DictBits);

    a.label("probe");
    // entry address = dict + h*16
    a.sldi(A0, T2, 4);
    a.add(A0, A0, S1);
    a.ld(A1, 0, A0); // entry key (stable once inserted)
    a.cmpi(1, A1, 0);
    a.bc(isa::Cond::EQ, 1, "miss");
    a.cmp(1, A1, T1);
    a.bc(isa::Cond::EQ, 1, "hit");
    // linear reprobe
    a.addi(T2, T2, 1);
    a.andi(T2, T2, DictEntries - 1);
    a.b("probe");

    a.label("hit");
    a.ld(S2, 8, A0); // entry code
    a.b("mainloop");

    a.label("miss");
    // Emit current prefix, insert (key, nextcode), restart with c.
    // Inserts stop at 3/4 occupancy (a frozen dictionary, like
    // classic compress) so linear probing always finds a free slot.
    a.add(S3, S3, S2);
    a.addi(S7, S7, 1);
    a.cmpi(2, S4, 256 + 3 * DictEntries / 4);
    a.bc(isa::Cond::GE, 2, "skipinsert");
    a.std_(T1, 0, A0);
    a.std_(S4, 8, A0);
    a.addi(S4, S4, 1);
    a.label("skipinsert");
    a.mr(S2, T0);
    a.b("mainloop");

    a.label("flush");
    a.add(S3, S3, S2); // emit final prefix
    a.addi(S7, S7, 1);
    // result = sum * 2^20 + emitted-count (both checkable)
    a.sldi(T0, S3, 20);
    a.add(T0, T0, S7);
    b.loadAddr(T1, "__result");
    a.std_(T0, 0, T1);
    a.halt();

    return b.finish();
}

} // namespace lvplib::workloads

/**
 * @file
 * "doduc" workload: a Monte-Carlo nuclear-reactor kernel — sample a
 * random energy group, look up cross-sections, update the particle
 * weight with floating-point arithmetic, and tally absorptions.
 *
 * Value-locality sources: the cross-section table and the threshold
 * constants are fixed (FP-constant loads); the particle-state spill
 * slots hold slowly-changing doubles. The paper measures doduc in the
 * middle of the pack (~45% at depth 1).
 */

#include <bit>

#include "workloads/common.hh"

namespace lvplib::workloads
{

isa::Program
buildDoduc(CodeGen cg, unsigned scale)
{
    using namespace regs;
    Builder b(cg);
    isa::Assembler &a = b.a();

    const unsigned particles = 120 * scale;
    constexpr unsigned Groups = 16;

    // ---- data --------------------------------------------------------
    a.dataLabel("__result");
    a.dspace(8);
    a.dalign(8);
    Addr xsec = a.dataLabel("xsec"); // absorption cross-sections
    a.dspace(Groups * 8);
    for (unsigned g = 0; g < Groups; ++g) {
        double v = 0.05 + 0.9 * static_cast<double>((g * 7) % Groups) /
                              Groups;
        a.pokeWord(xsec + g * 8, std::bit_cast<Word>(v));
    }
    a.dataLabel("spill"); // particle-state spill slots
    a.dspace(4 * 8);

    // ---- code -----------------------------------------------------------
    // S0 xsec base, S1 spill base, S2 particle counter, S3 rng state,
    // S4 absorption tally (integer).
    // f1 = particle weight, f2 = 0.5 decay, f3 = threshold, f4 = 1.0.
    b.loadAddr(S0, "xsec");
    b.loadAddr(S1, "spill");
    a.li(S2, 0);
    b.loadConst(S3, "seed", 0x1234567);
    a.li(S4, 0);
    b.loadFpConst(4, "one", 1.0);

    a.label("particle");
    a.fmr(1, 4); // weight = 1.0
    a.li(T2, 0); // bounce count

    a.label("bounce");
    // xorshift rng (pure ALU)
    a.sldi(T0, S3, 13);
    a.xor_(S3, S3, T0);
    a.srdi(T0, S3, 7);
    a.xor_(S3, S3, T0);
    a.sldi(T0, S3, 17);
    a.xor_(S3, S3, T0);
    // group = rng & (Groups-1); sigma = xsec[group]
    a.andi(T0, S3, Groups - 1);
    a.sldi(T0, T0, 3);
    a.add(T0, T0, S0);
    a.lfd(5, 0, T0); // cross-section: FP run-time constant
    // FP constants have no immediate form: the decay factor and the
    // absorption threshold are re-loaded every bounce (high locality).
    b.loadFpConst(2, "decay", 0.5, A1);
    b.loadFpConst(3, "threshold", 0.08, A1);
    // weight *= (1 - sigma) * decay_adjust: w = w - w*sigma*0.5
    a.fmul(6, 1, 5);
    a.fmul(6, 6, 2);
    a.fsub(1, 1, 6);
    // spill and reload the weight (register-pressure idiom)
    a.stfd(1, 0, S1);
    a.lfd(7, 0, S1);
    // absorbed? weight < threshold
    a.fcmp(1, 7, 3);
    a.bc(isa::Cond::LT, 1, "absorbed");
    a.addi(T2, T2, 1);
    a.cmpi(0, T2, 64); // cap bounces
    a.bc(isa::Cond::LT, 0, "bounce");

    a.label("absorbed");
    a.add(S4, S4, T2); // tally total bounces
    a.addi(S2, S2, 1);
    a.cmpi(0, S2, static_cast<std::int64_t>(particles));
    a.bc(isa::Cond::LT, 0, "particle");

    b.loadAddr(T0, "__result");
    a.std_(S4, 0, T0);
    a.halt();

    return b.finish();
}

} // namespace lvplib::workloads

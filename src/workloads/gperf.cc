/**
 * @file
 * "gperf" workload: search for a collision-free hash function over a
 * fixed keyword set (GNU's perfect hash-function generator).
 *
 * Value-locality sources: every trial reloads the same keyword bytes
 * and lengths (run-time constants with near-perfect locality); the
 * associated-values table changes only one entry per failed trial.
 */

#include "workloads/common.hh"

namespace lvplib::workloads
{

isa::Program
buildGperf(CodeGen cg, unsigned scale)
{
    using namespace regs;
    Builder b(cg);
    isa::Assembler &a = b.a();

    static const char *const keywords[] = {
        "auto", "break", "case", "char", "const", "continue",
        "default", "do", "double", "else", "enum", "extern",
        "float", "for", "goto", "if", "inline", "int", "long",
        "register", "return", "short", "signed", "sizeof",
    };
    constexpr unsigned K = 24;
    constexpr unsigned TableSize = 64; // hash range per trial

    // ---- data ----------------------------------------------------------
    a.dataLabel("__result");
    a.dspace(8);
    a.dalign(8);
    // Keyword table: K records of {ptr, len} — the pointers are data
    // addresses loaded each trial.
    Addr kwtab = a.dataLabel("kwtab");
    a.dspace(K * 16);
    for (unsigned i = 0; i < K; ++i) {
        a.dataLabel("kw" + std::to_string(i));
        a.dstring(keywords[i]);
    }
    a.dalign(8);
    a.dataLabel("asso"); // 26 associated values
    a.dspace(26 * 8);
    a.dataLabel("occupied"); // TableSize occupancy flags per trial
    a.dspace(TableSize * 8);

    // ---- main -----------------------------------------------------------
    // Trials: compute h(k) = (asso[first] + asso[last] + len) % 64 for
    // every keyword; on the first collision, bump asso[first of the
    // colliding keyword] and retry. Run `scale` full sweeps of this
    // search (restarting with a cleared asso table each sweep).
    // S0 kwtab, S1 asso, S2 occupied, S3 trial counter,
    // S4 sweep counter, S5 sweep limit.
    b.loadAddr(S0, "kwtab");
    b.loadAddr(S1, "asso");
    b.loadAddr(S2, "occupied");
    a.li(S3, 0);
    a.li(S4, 0);
    b.loadConst(S5, "sweeps", scale);

    a.label("sweep");
    a.li(S7, 0); // trials this sweep (bounded: the search may cycle)
    // clear asso
    a.li(T0, 0);
    a.label("clearasso");
    a.sldi(T1, T0, 3);
    a.add(T1, T1, S1);
    a.std_(0, 0, T1);
    a.addi(T0, T0, 1);
    a.cmpi(0, T0, 26);
    a.bc(isa::Cond::LT, 0, "clearasso");

    a.label("trial");
    a.addi(S3, S3, 1);
    a.addi(S7, S7, 1);
    a.cmpi(3, S7, 150); // give up on a pathological search
    a.bc(isa::Cond::GT, 3, "sweepdone");
    // clear occupancy
    a.li(T0, 0);
    a.label("clearocc");
    a.sldi(T1, T0, 3);
    a.add(T1, T1, S2);
    a.std_(0, 0, T1);
    a.addi(T0, T0, 1);
    a.cmpi(0, T0, TableSize);
    a.bc(isa::Cond::LT, 0, "clearocc");

    // for each keyword compute the hash and mark occupancy
    a.li(S6, 0); // keyword index
    a.label("kwloop");
    a.sldi(T0, S6, 4);
    a.add(T0, T0, S0);
    a.ld(A0, 0, T0, isa::DataClass::DataAddr); // keyword ptr (constant)
    a.ld(A1, 8, T0);                           // keyword len (constant)
    a.lbz(T1, 0, A0);  // first char (constant)
    a.add(T2, A0, A1);
    a.lbz(T2, -1, T2); // last char (constant)
    // h = (asso[first-'a'] + asso[last-'a'] + len) & 63
    a.addi(T1, T1, -'a');
    a.sldi(T1, T1, 3);
    a.add(T1, T1, S1);
    a.ld(T1, 0, T1);
    a.addi(T2, T2, -'a');
    a.sldi(T2, T2, 3);
    a.add(T2, T2, S1);
    a.ld(T2, 0, T2);
    a.add(T1, T1, T2);
    a.add(T1, T1, A1);
    a.andi(T1, T1, TableSize - 1);
    // collision?
    a.sldi(T1, T1, 3);
    a.add(T1, T1, S2);
    a.ld(T2, 0, T1); // occupancy flag (mostly 0: error-check load)
    a.cmpi(0, T2, 0);
    a.bc(isa::Cond::NE, 0, "collide");
    a.li(T2, 1);
    a.std_(T2, 0, T1);
    a.addi(S6, S6, 1);
    a.cmpi(0, S6, K);
    a.bc(isa::Cond::LT, 0, "kwloop");
    // perfect: sweep done
    a.label("sweepdone");
    a.addi(S4, S4, 1);
    a.cmp(0, S4, S5);
    a.bc(isa::Cond::LT, 0, "sweep");
    a.b("finish");

    a.label("collide");
    // bump asso[first char of colliding keyword] and retry
    a.lbz(T0, 0, A0);
    a.addi(T0, T0, -'a');
    a.sldi(T0, T0, 3);
    a.add(T0, T0, S1);
    a.ld(T1, 0, T0);
    a.addi(T1, T1, 1);
    a.std_(T1, 0, T0);
    a.b("trial");

    a.label("finish");
    // result = total trials across sweeps
    b.loadAddr(T0, "__result");
    a.std_(S3, 0, T0);
    a.halt();

    isa::Program prog = b.finish();
    // Patch the keyword table now that string addresses are known.
    for (unsigned i = 0; i < K; ++i) {
        prog.setWord(kwtab + i * 16,
                     prog.symbol("kw" + std::to_string(i)));
        prog.setWord(kwtab + i * 16 + 8,
                     std::char_traits<char>::length(keywords[i]));
    }
    return prog;
}

} // namespace lvplib::workloads

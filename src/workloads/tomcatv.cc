/**
 * @file
 * "tomcatv" workload: vectorized mesh generation — Jacobi-style
 * relaxation of x/y node coordinates toward the average of their
 * neighbours, with residual tracking.
 *
 * The coordinates move every sweep (the relaxation runs far from
 * convergence at the paper's truncated iteration counts), so
 * coordinate loads rarely repeat: tomcatv is the paper's third
 * LOW-locality benchmark.
 */

#include "workloads/common.hh"

#include <bit>

#include "util/rng.hh"

namespace lvplib::workloads
{

isa::Program
buildTomcatv(CodeGen cg, unsigned scale)
{
    using namespace regs;
    Builder b(cg);
    isa::Assembler &a = b.a();

    constexpr unsigned N = 20;
    const unsigned sweeps = 2 * scale; // paper: 4 iterations (vs 100)

    // ---- data -----------------------------------------------------------
    a.dataLabel("__result");
    a.dspace(8);
    a.dalign(8);
    Addr xs = a.dataLabel("xcoord");
    a.dspace(N * N * 8);
    Addr ys = a.dataLabel("ycoord");
    a.dspace(N * N * 8);
    // A distorted initial mesh: grid positions plus noise.
    Rng rng(0x746f6d63);
    for (unsigned i = 0; i < N; ++i) {
        for (unsigned j = 0; j < N; ++j) {
            double noise_x = (rng.uniform() - 0.5) * 0.8;
            double noise_y = (rng.uniform() - 0.5) * 0.8;
            a.pokeWord(xs + (i * N + j) * 8,
                       std::bit_cast<Word>(j + noise_x));
            a.pokeWord(ys + (i * N + j) * 8,
                       std::bit_cast<Word>(i + noise_y));
        }
    }

    // ---- code ----------------------------------------------------------
    // S0 x base, S1 y base, S2 sweep counter, f2 relaxation factor.
    b.loadAddr(S0, "xcoord");
    b.loadAddr(S1, "ycoord");
    a.li(S2, 0);
    b.loadFpConst(2, "relax", 0.11);

    a.label("sweep");
    a.li(S3, 1);
    a.label("row");
    a.li(S4, 1);
    a.label("col");
    // per-cell reload of the relaxation factor (FP constant load)
    b.loadFpConst(2, "relax", 0.11);
    a.li(T0, N);
    a.mull(T0, S3, T0);
    a.add(T0, T0, S4);
    a.sldi(T0, T0, 3);

    // relax x: x += relax * (avg(neighbours) - x)
    a.add(T1, T0, S0);
    a.lfd(3, -8, T1);
    a.lfd(4, 8, T1);
    a.lfd(5, -static_cast<std::int64_t>(N) * 8, T1);
    a.lfd(6, static_cast<std::int64_t>(N) * 8, T1);
    a.fadd(3, 3, 4);
    a.fadd(5, 5, 6);
    a.fadd(3, 3, 5);
    b.loadFpConst(7, "quarter", 0.25);
    a.fmul(3, 3, 7);
    a.lfd(6, 0, T1); // x value: changes every sweep
    a.fsub(3, 3, 6);
    a.fmul(3, 3, 2);
    a.fadd(6, 6, 3);
    a.stfd(6, 0, T1);

    // relax y identically
    a.add(T1, T0, S1);
    a.lfd(3, -8, T1);
    a.lfd(4, 8, T1);
    a.lfd(5, -static_cast<std::int64_t>(N) * 8, T1);
    a.lfd(6, static_cast<std::int64_t>(N) * 8, T1);
    a.fadd(3, 3, 4);
    a.fadd(5, 5, 6);
    a.fadd(3, 3, 5);
    a.fmul(3, 3, 7);
    a.lfd(6, 0, T1);
    a.fsub(3, 3, 6);
    a.fmul(3, 3, 2);
    a.fadd(6, 6, 3);
    a.stfd(6, 0, T1);

    a.addi(S4, S4, 1);
    a.cmpi(0, S4, N - 1);
    a.bc(isa::Cond::LT, 0, "col");
    a.addi(S3, S3, 1);
    a.cmpi(0, S3, N - 1);
    a.bc(isa::Cond::LT, 0, "row");
    a.addi(S2, S2, 1);
    a.cmpi(0, S2, static_cast<std::int64_t>(sweeps));
    a.bc(isa::Cond::LT, 0, "sweep");

    // checksum over both coordinate arrays
    a.li(T0, 0);
    a.li(S4, 0);
    b.loadFpConst(3, "ckscale", 4096.0);
    a.label("ck");
    a.sldi(T1, T0, 3);
    a.add(T2, T1, S0);
    a.lfd(1, 0, T2);
    a.fmul(1, 1, 3);
    a.fctid(T2, 1);
    a.add(S4, S4, T2);
    a.add(T2, T1, S1);
    a.lfd(1, 0, T2);
    a.fmul(1, 1, 3);
    a.fctid(T2, 1);
    a.add(S4, S4, T2);
    a.addi(T0, T0, 1);
    a.cmpi(0, T0, N * N);
    a.bc(isa::Cond::LT, 0, "ck");
    b.loadAddr(T0, "__result");
    a.std_(S4, 0, T0);
    a.halt();

    return b.finish();
}

} // namespace lvplib::workloads

/**
 * @file
 * "grep" workload: Boyer-Moore-Horspool search for a fixed pattern,
 * counting matches (the paper runs gnu-grep -c, which uses a
 * Boyer-Moore variant).
 *
 * Value-locality sources: the skip-table load returns the full
 * pattern length for almost every window (a near-constant value), and
 * the verify loop reloads pattern bytes (run-time constants). The
 * skip value feeds the NEXT window's addresses, so the scan's
 * critical path runs through a predictable load — this is why the
 * paper calls grep data-dependence bound and why it gains so much
 * from LVP.
 */

#include "workloads/common.hh"

#include "util/rng.hh"

namespace lvplib::workloads
{

isa::Program
buildGrep(CodeGen cg, unsigned scale)
{
    using namespace regs;
    Builder b(cg);
    isa::Assembler &a = b.a();

    const std::string pattern = "abra";
    const auto pat_len = static_cast<std::int64_t>(pattern.size());
    const std::size_t text_len = 3000 * scale;

    // ---- data ---------------------------------------------------------
    a.dataLabel("__result");
    a.dspace(8);
    a.dataLabel("pattern");
    a.dstring(pattern);
    // Horspool skip table: delta[c] = distance to shift the window
    // when its LAST character is c; 0 marks "last char matches,
    // verify the window".
    a.dalign(8);
    a.dataLabel("delta");
    for (unsigned c = 0; c < 256; ++c) {
        std::uint8_t d = static_cast<std::uint8_t>(pat_len);
        for (std::size_t k = 0; k + 1 < pattern.size(); ++k) {
            if (static_cast<std::uint8_t>(pattern[k]) == c)
                d = static_cast<std::uint8_t>(pattern.size() - 1 - k);
        }
        if (static_cast<std::uint8_t>(pattern.back()) == c)
            d = 0;
        a.db(d);
    }
    a.dataLabel("text");
    Rng rng(0x67726570);
    for (std::size_t i = 0; i < text_len; ++i) {
        if (rng.chance(1, 97)) {
            for (char c : pattern)
                a.db(static_cast<std::uint8_t>(c));
            i += pattern.size() - 1;
        } else if (rng.chance(1, 6)) {
            a.db(rng.chance(1, 8) ? '\n' : ' ');
        } else {
            a.db(static_cast<std::uint8_t>('a' + rng.below(26)));
        }
    }
    a.db(0);

    // ---- code -----------------------------------------------------------
    // S0 text base, S1 scan limit (last valid window start), S2
    // pattern base, S3 match count, S4 window start, S5 delta base.
    b.loadAddr(S0, "text");
    b.loadConst(S1, "limit",
                static_cast<std::int64_t>(text_len) - pat_len);
    b.loadAddr(S2, "pattern");
    b.loadAddr(S5, "delta");
    a.li(S3, 0);
    a.li(S4, 0);

    a.label("scan");
    a.cmp(0, S4, S1);
    a.bc(isa::Cond::GT, 0, "done");
    // c = text[i + patlen - 1] (the window's last character)
    a.add(T0, S0, S4);
    a.lbz(T1, pat_len - 1, T0);
    // skip = delta[c]: a near-constant load on the critical path
    a.add(T2, S5, T1);
    a.lbz(T2, 0, T2);
    a.cmpi(1, T2, 0);
    a.bc(isa::Cond::EQ, 1, "verify");
    a.add(S4, S4, T2); // the next window depends on the loaded skip
    a.b("scan");

    a.label("verify");
    // Compare the full window against the pattern.
    a.li(T0, 0);
    a.label("vloop");
    a.add(T1, S2, T0);
    a.lbz(T1, 0, T1); // pattern byte: a run-time constant
    a.cmpi(1, T1, 0);
    a.bc(isa::Cond::EQ, 1, "matched");
    a.add(T2, S0, S4);
    a.add(T2, T2, T0);
    a.lbz(T2, 0, T2);
    a.cmp(1, T1, T2);
    a.bc(isa::Cond::NE, 1, "nomatch");
    a.addi(T0, T0, 1);
    a.b("vloop");

    a.label("matched");
    a.addi(S3, S3, 1);

    a.label("nomatch");
    a.addi(S4, S4, 1);
    a.b("scan");

    a.label("done");
    b.loadAddr(T0, "__result");
    a.std_(S3, 0, T0);
    a.halt();

    return b.finish();
}

} // namespace lvplib::workloads

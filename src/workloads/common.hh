/**
 * @file
 * The workload Builder: an Assembler wrapper that implements the
 * software conventions whose memory idioms the paper identifies as
 * value-locality sources (Section 2):
 *
 *  - a TOC (table of contents) through which PowerPC-style code loads
 *    program constants and global addresses ("program constants",
 *    "addressability");
 *  - function prologues/epilogues that save and restore the link
 *    register and callee-saved registers through the stack
 *    ("call-subgraph identities", "register spill code");
 *  - jump tables for computed branches ("computed branches") and
 *    function-pointer calls ("virtual function calls").
 *
 * Alpha-style code generation synthesizes constants and addresses
 * with immediate sequences instead of TOC loads, mirroring the
 * paper's observation that value locality is ISA/compiler dependent.
 */

#ifndef LVPLIB_WORKLOADS_COMMON_HH
#define LVPLIB_WORKLOADS_COMMON_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/assembler.hh"
#include "util/rng.hh"
#include "workloads/workload.hh"

namespace lvplib::workloads
{

/** Conventional register assignments used by all workloads. */
namespace regs
{
constexpr RegIndex Sp = 1;   ///< stack pointer
constexpr RegIndex Toc = 2;  ///< TOC pointer (PPC codegen)
constexpr RegIndex A0 = 3;   ///< first argument / return value
constexpr RegIndex A1 = 4;
constexpr RegIndex A2 = 5;
constexpr RegIndex A3 = 6;
constexpr RegIndex T0 = 11;  ///< caller-saved temporaries
constexpr RegIndex T1 = 12;
constexpr RegIndex T2 = 13;
constexpr RegIndex S0 = 14;  ///< callee-saved
constexpr RegIndex S1 = 15;
constexpr RegIndex S2 = 16;
constexpr RegIndex S3 = 17;
constexpr RegIndex S4 = 18;
constexpr RegIndex S5 = 19;
constexpr RegIndex S6 = 20;
constexpr RegIndex S7 = 21;
} // namespace regs

class Builder
{
  public:
    explicit Builder(CodeGen cg);

    isa::Assembler &a() { return asm_; }
    CodeGen cg() const { return cg_; }

    // ---- TOC --------------------------------------------------------
    /**
     * Ensure a TOC slot named @p key holding @p value exists and
     * return its displacement from the TOC base. TOC slots must be
     * created before finish().
     */
    std::int64_t tocSlot(const std::string &key, Word value);

    /**
     * Load the address of data symbol @p sym into @p rd. PPC codegen
     * loads it from a TOC slot (a data-address load); Alpha codegen
     * synthesizes it with immediates.
     */
    void loadAddr(RegIndex rd, const std::string &sym);

    /**
     * Materialize the program constant @p value in @p rd. PPC codegen
     * loads wide constants from the TOC (a run-time-constant load);
     * Alpha codegen synthesizes them. Narrow constants use immediates
     * in both styles.
     */
    void loadConst(RegIndex rd, const std::string &key, std::int64_t value);

    /**
     * Load the FP constant @p value into FPR @p fd (always a memory
     * load: neither ISA has FP immediates). Alpha-style codegen
     * synthesizes the slot address into @p tmp first (PPC-style
     * reaches it through r2 directly).
     */
    void loadFpConst(RegIndex fd, const std::string &key, double value,
                     RegIndex tmp = regs::T2);

    /**
     * Loop-body constant access. PPC-style codegen re-loads the
     * constant from its TOC slot into @p rd on every execution (the
     * idiom real TOC-based code exhibits under register pressure) and
     * returns @p rd; Alpha-style codegen emits nothing and returns
     * @p hoisted, a register the caller loaded outside the loop.
     * This is one of the mechanisms behind the paper's observation
     * that value locality differs between the two ISAs' binaries.
     */
    RegIndex loopConst(RegIndex rd, const std::string &key,
                       std::int64_t value, RegIndex hoisted);

    // ---- functions ----------------------------------------------------
    /**
     * Emit a function prologue: define label @p name, allocate a
     * frame, save LR and @p saved callee-saved registers
     * (regs::S0...). Matching epilogue() restores them — those
     * restores are the paper's "call-subgraph identity" loads.
     */
    void prologue(const std::string &name, unsigned saved = 0);

    /** Emit the matching epilogue and return. */
    void epilogue();

    /**
     * Emit an indirect call through a function-pointer VALUE already
     * in @p rt (virtual-call idiom): mtctr rt; bctrl.
     */
    void callIndirect(RegIndex rt);

    /**
     * Emit a computed branch: rt holds a 0-based case index; a jump
     * table of code addresses for @p case_labels is placed in the
     * data section. The load of the table entry is an
     * instruction-address load.
     */
    void switchJump(RegIndex rt, RegIndex tmp,
                    const std::vector<std::string> &case_labels);

    /**
     * Finalize: materializes the TOC image and any pending jump
     * tables, then assembles.
     */
    isa::Program finish();

  private:
    struct PendingJumpTable
    {
        std::string dataSym;
        std::vector<std::string> labels;
    };

    CodeGen cg_;
    isa::Assembler asm_;
    Addr tocBase_;
    std::vector<std::pair<std::string, Word>> tocEntries_;
    std::map<std::string, std::int64_t> tocIndex_;
    std::vector<PendingJumpTable> jumpTables_;
    std::vector<unsigned> frameSaved_; ///< prologue/epilogue nesting
    int jtCounter_ = 0;
};

/**
 * Fill @p sym (already reserved with dspace) in the data image with
 * generated 64-bit words. Convenience for input generation.
 */
void fillWords(isa::Assembler &a, Addr base,
               const std::vector<Word> &words);

} // namespace lvplib::workloads

#endif // LVPLIB_WORKLOADS_COMMON_HH

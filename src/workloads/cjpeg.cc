/**
 * @file
 * "cjpeg" workload: JPEG-style encoding of a noisy greyscale image —
 * blocked integer transform (shift/add butterflies, as fast DCT
 * approximations use) followed by quantization.
 *
 * The paper's cjpeg is a LOW-locality benchmark: the dominant static
 * loads fetch raw pixel bytes, which vary essentially randomly, so
 * depth-1 value locality is poor. We keep the transform coefficients
 * in synthesized form (shifts/adds) so pixel loads dominate.
 */

#include "workloads/common.hh"

#include "util/rng.hh"

namespace lvplib::workloads
{

isa::Program
buildCjpeg(CodeGen cg, unsigned scale)
{
    using namespace regs;
    Builder b(cg);
    isa::Assembler &a = b.a();

    const std::size_t pixels = 2048 * scale; // multiple of 8

    // ---- data ----------------------------------------------------------
    a.dataLabel("__result");
    a.dspace(8);
    a.dataLabel("image");
    Rng rng(0x6a706567);
    for (std::size_t i = 0; i < pixels; ++i)
        a.db(static_cast<std::uint8_t>(rng.below(256)));
    a.dalign(8);
    a.dataLabel("coeffs"); // quantized outputs, 8 dwords per block
    a.dspace(8 * 8);

    // ---- code -----------------------------------------------------------
    // Per 8-pixel block: load the 8 pixels into A0..A3,T0..T2,S6,
    // run a 3-stage butterfly, quantize, accumulate a checksum.
    // S0 image ptr, S1 image end, S2 checksum.
    const auto img_end =
        static_cast<std::int64_t>(a.symbolAddr("image") + pixels);
    b.loadAddr(S0, "image");
    b.loadConst(S1, "imgend", img_end);
    a.li(S2, 0);

    a.label("block");
    // Per-block loop-bound reload (TOC idiom on PPC codegen).
    RegIndex end_r = b.loopConst(T0, "imgend", img_end, S1);
    a.cmpu(0, S0, end_r);
    a.bc(isa::Cond::GE, 0, "done");
    // load 8 pixels (random bytes: poor value locality)
    a.lbz(A0, 0, S0);
    a.lbz(A1, 1, S0);
    a.lbz(A2, 2, S0);
    a.lbz(A3, 3, S0);
    a.lbz(T0, 4, S0);
    a.lbz(T1, 5, S0);
    a.lbz(T2, 6, S0);
    a.lbz(S6, 7, S0);
    a.addi(S0, S0, 8);

    // stage 1: sums and differences of mirrored pairs
    a.add(S3, A0, S6); // s0 = x0+x7
    a.sub(S6, A0, S6); // d0 = x0-x7
    a.add(S4, A1, T2); // s1 = x1+x6
    a.sub(T2, A1, T2); // d1
    a.add(S5, A2, T1); // s2 = x2+x5
    a.sub(T1, A2, T1); // d2
    a.add(S7, A3, T0); // s3 = x3+x4
    a.sub(T0, A3, T0); // d3

    // stage 2: even part
    a.add(A0, S3, S7); // e0 = s0+s3
    a.sub(A1, S3, S7); // e1 = s0-s3
    a.add(A2, S4, S5); // e2 = s1+s2
    a.sub(A3, S4, S5); // e3 = s1-s2

    // stage 3: outputs with shift/add coefficient approximations
    a.add(S3, A0, A2);       // F0 = e0+e2
    a.sub(S4, A0, A2);       // F4 = e0-e2
    a.sldi(S5, A1, 1);
    a.add(S5, S5, A3);       // F2 ~ 2*e1+e3
    a.sldi(S7, A3, 1);
    a.sub(S7, A1, S7);       // F6 ~ e1-2*e3
    // odd part folded into two terms
    a.sldi(A0, S6, 1);
    a.add(A0, A0, T2);
    a.add(A0, A0, T1);       // F1 ~ 2*d0+d1+d2
    a.sldi(A1, T0, 1);
    a.sub(A1, T2, A1);
    a.add(A1, A1, T1);       // F3 ~ d1-2*d3+d2

    // quantize (arithmetic shifts) and accumulate the checksum
    a.sradi(S3, S3, 3);
    a.sradi(S4, S4, 3);
    a.sradi(S5, S5, 4);
    a.sradi(S7, S7, 4);
    a.sradi(A0, A0, 4);
    a.sradi(A1, A1, 4);
    a.add(S2, S2, S3);
    a.add(S2, S2, S4);
    a.add(S2, S2, S5);
    a.add(S2, S2, S7);
    a.add(S2, S2, A0);
    a.add(S2, S2, A1);
    // rotate the checksum so ordering matters
    a.sldi(T0, S2, 1);
    a.srdi(T1, S2, 63);
    a.or_(S2, T0, T1);
    a.b("block");

    a.label("done");
    b.loadAddr(T0, "__result");
    a.std_(S2, 0, T0);
    a.halt();

    return b.finish();
}

} // namespace lvplib::workloads

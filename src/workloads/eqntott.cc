/**
 * @file
 * "eqntott" workload: translate a boolean equation into a truth table
 * by evaluating a postfix expression for every input combination (the
 * paper converts equations to truth tables).
 *
 * Value-locality sources: the postfix-program bytes are reloaded for
 * every input combination (run-time constants), and the evaluation
 * stack holds only 0/1 values (extreme data redundancy) — eqntott is
 * one of the paper's high-locality integer codes.
 */

#include "workloads/common.hh"

namespace lvplib::workloads
{

isa::Program
buildEqntott(CodeGen cg, unsigned scale)
{
    using namespace regs;
    Builder b(cg);
    isa::Assembler &a = b.a();

    // Postfix expression over 8 variables v0..v7. Opcodes: 0..7 push
    // variable i, 8 = AND, 9 = OR, 10 = NOT, 11 = XOR, 255 = end.
    static const std::uint8_t expr[] = {
        0, 1, 8,        // v0 & v1
        2, 10,          // ~v2
        9,              // |
        3, 4, 11,       // v3 ^ v4
        8,              // &
        5, 6, 9, 7, 8,  // (v5|v6)&v7
        9,              // |
        255,
    };
    const unsigned reps = scale; // full 256-row truth tables per rep

    // ---- data --------------------------------------------------------
    a.dataLabel("__result");
    a.dspace(8);
    a.dataLabel("expr");
    for (std::uint8_t op : expr)
        a.db(op);
    a.dalign(8);
    a.dataLabel("stack");
    a.dspace(64 * 8);

    // ---- code ---------------------------------------------------------
    // S0 expr base, S1 stack base, S2 input combination, S3 minterm
    // count, S4 rep counter, S5 combination limit.
    b.loadAddr(S0, "expr");
    b.loadAddr(S1, "stack");
    a.li(S3, 0);
    a.li(S4, 0);
    b.loadConst(S5, "reps", reps);

    a.label("repeat");
    a.li(S2, 0); // input combination 0..255
    a.label("rowloop");
    // evaluate: T0 = pc offset, T1 = stack depth
    a.li(T0, 0);
    a.li(T1, 0);
    a.label("evalloop");
    a.add(T2, S0, T0);
    a.lbz(T2, 0, T2); // postfix opcode: a run-time constant
    a.addi(T0, T0, 1);
    a.cmpi(0, T2, 255);
    a.bc(isa::Cond::EQ, 0, "evaldone");
    a.cmpi(0, T2, 8);
    a.bc(isa::Cond::GE, 0, "operator");
    // push variable bit: (comb >> op) & 1
    a.srd(A0, S2, T2);
    a.andi(A0, A0, 1);
    a.sldi(A1, T1, 3);
    a.add(A1, A1, S1);
    a.std_(A0, 0, A1);
    a.addi(T1, T1, 1);
    a.b("evalloop");

    a.label("operator");
    a.cmpi(0, T2, 10);
    a.bc(isa::Cond::EQ, 0, "opnot");
    // binary: pop two (0/1 values: high redundancy)
    a.addi(T1, T1, -2);
    a.sldi(A1, T1, 3);
    a.add(A1, A1, S1);
    a.ld(A0, 0, A1);  // lhs
    a.ld(A2, 8, A1);  // rhs
    a.cmpi(0, T2, 8);
    a.bc(isa::Cond::EQ, 0, "opand");
    a.cmpi(0, T2, 9);
    a.bc(isa::Cond::EQ, 0, "opor");
    a.xor_(A0, A0, A2);
    a.b("push1");
    a.label("opand");
    a.and_(A0, A0, A2);
    a.b("push1");
    a.label("opor");
    a.or_(A0, A0, A2);
    a.b("push1");
    a.label("opnot");
    a.addi(T1, T1, -1);
    a.sldi(A1, T1, 3);
    a.add(A1, A1, S1);
    a.ld(A0, 0, A1);
    a.xori(A0, A0, 1);
    a.label("push1");
    a.sldi(A1, T1, 3);
    a.add(A1, A1, S1);
    a.std_(A0, 0, A1);
    a.addi(T1, T1, 1);
    a.b("evalloop");

    a.label("evaldone");
    // pop the result; count minterms
    a.ld(A0, 0, S1);
    a.add(S3, S3, A0);
    a.addi(S2, S2, 1);
    a.cmpi(0, S2, 256);
    a.bc(isa::Cond::LT, 0, "rowloop");
    a.addi(S4, S4, 1);
    a.cmp(0, S4, S5);
    a.bc(isa::Cond::LT, 0, "repeat");

    b.loadAddr(T0, "__result");
    a.std_(S3, 0, T0);
    a.halt();

    return b.finish();
}

} // namespace lvplib::workloads

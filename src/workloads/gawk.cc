/**
 * @file
 * "gawk" workload: parse a simulator-result-style text file of
 * "<tag> <number>" lines and accumulate per-tag sums in an awk-style
 * associative array (the paper runs GNU awk over a 1.7 MB simulator
 * output file).
 *
 * The scanner is a table-driven DFA, as in real lexers: each input
 * byte indexes a character-class table, and (class, state) indexes a
 * transition table — two chained loads per character whose values are
 * highly repetitive and sit on the scan's critical path (the state
 * feeds the next transition's address). The associative-array update
 * walks a per-bucket chain of tag cells (pointer loads that never
 * change). This load-value-through-address-dependence structure is
 * why the paper finds gawk data-dependence bound, with dramatic LVP
 * speedups.
 */

#include <cstdio>

#include "workloads/common.hh"

#include "util/rng.hh"

namespace lvplib::workloads
{

namespace
{

/** Character classes for the DFA. */
enum CClass : std::uint8_t
{
    CcLetter = 0,
    CcDigit = 1,
    CcSpace = 2,
    CcNewline = 3,
    CcEnd = 4,
    NumCClasses = 5,
};

/** Scanner states. */
enum State : std::uint8_t
{
    StTag = 0,    ///< scanning the tag word
    StNum = 1,    ///< scanning the number
    StDone = 2,   ///< line complete (newline seen)
    StEof = 3,    ///< NUL seen
    NumStates = 4,
};

} // namespace

isa::Program
buildGawk(CodeGen cg, unsigned scale)
{
    using namespace regs;
    Builder b(cg);
    isa::Assembler &a = b.a();

    const unsigned lines = 120 * scale;
    static const char *const tags[] = {
        "cycles", "ipc", "loads", "stores", "misses", "hits",
    };

    // ---- data -------------------------------------------------------
    a.dataLabel("__result");
    a.dspace(8);
    a.dalign(8);

    // Character-class table (256 entries, one byte each).
    a.dataLabel("ctype");
    for (unsigned c = 0; c < 256; ++c) {
        std::uint8_t cc = CcLetter;
        if (c >= '0' && c <= '9')
            cc = CcDigit;
        else if (c == ' ')
            cc = CcSpace;
        else if (c == '\n')
            cc = CcNewline;
        else if (c == 0)
            cc = CcEnd;
        a.db(cc);
    }

    // DFA transition table trans[state][cclass] (bytes).
    a.dalign(8);
    a.dataLabel("trans");
    {
        std::uint8_t t[NumStates][NumCClasses];
        for (auto &row : t)
            for (auto &e : row)
                e = StDone;
        t[StTag][CcLetter] = StTag;
        t[StTag][CcSpace] = StNum; // the separator starts the number
        t[StTag][CcDigit] = StTag; // digits may appear inside tags
        t[StTag][CcNewline] = StDone;
        t[StTag][CcEnd] = StEof;
        t[StNum][CcDigit] = StNum;
        t[StNum][CcNewline] = StDone;
        t[StNum][CcSpace] = StNum;
        t[StNum][CcLetter] = StNum;
        t[StNum][CcEnd] = StEof;
        for (auto &row : t)
            for (auto &e : row)
                a.db(e);
    }

    // Associative array: 8 hash buckets, each a chain of cells
    // {tagchar, sum, next}. Cells are pre-built for the 6 tags (awk
    // would allocate them on first insertion; the chains are constant
    // thereafter, which is the point).
    a.dalign(8);
    Addr buckets = a.dataLabel("buckets");
    a.dspace(8 * 8);
    Addr cells = a.dataLabel("cells");
    a.dspace(6 * 24);
    a.dataLabel("text");
    Rng rng(0x6761776b);
    for (unsigned i = 0; i < lines; ++i) {
        const char *tag = tags[rng.below(6)];
        for (const char *p = tag; *p; ++p)
            a.db(static_cast<std::uint8_t>(*p));
        a.db(' ');
        unsigned long v = rng.below(100000);
        char buf[16];
        int n = std::snprintf(buf, sizeof(buf), "%lu", v);
        for (int k = 0; k < n; ++k)
            a.db(static_cast<std::uint8_t>(buf[k]));
        a.db('\n');
    }
    a.db(0);

    // ---- code -----------------------------------------------------------
    // S0 text ptr, S1 ctype base, S2 trans base, S3 line count,
    // S4 buckets base, S5 state, S6 number value, S7 tag first char.
    b.loadAddr(S0, "text");
    b.loadAddr(S1, "ctype");
    b.loadAddr(S2, "trans");
    b.loadAddr(S4, "buckets");
    a.li(S3, 0);

    a.label("lineloop");
    a.lbz(S7, 0, S0); // first char of the tag (or NUL at EOF)
    a.cmpi(0, S7, 0);
    a.bc(isa::Cond::EQ, 0, "eof");
    a.li(S5, StTag);
    a.li(S6, 0);

    a.label("charloop");
    a.lbz(T0, 0, S0); // input byte
    a.addi(S0, S0, 1);
    // cc = ctype[c]: repetitive class values
    a.add(T1, S1, T0);
    a.lbz(T1, 0, T1);
    // state = trans[state*NumCClasses + cc]: the loaded class feeds
    // this address, and the loaded state feeds the NEXT one — a
    // loop-carried chain through two loads.
    a.li(T2, NumCClasses);
    a.mull(T2, S5, T2);
    a.add(T2, T2, T1);
    a.add(T2, T2, S2);
    a.lbz(S5, 0, T2);
    // accumulate digits while in the number state
    a.cmpi(1, S5, StNum);
    a.bc(isa::Cond::NE, 1, "notdigit");
    a.add(T1, S1, T0);
    a.lbz(T1, 0, T1);
    a.cmpi(2, T1, CcDigit);
    a.bc(isa::Cond::NE, 2, "notdigit");
    // value = value*10 + (c - '0')
    a.sldi(T2, S6, 3);
    a.sldi(A1, S6, 1);
    a.add(S6, T2, A1);
    a.addi(T0, T0, -'0');
    a.add(S6, S6, T0);
    a.label("notdigit");
    a.cmpi(1, S5, StDone);
    a.bc(isa::Cond::EQ, 1, "lineend");
    a.cmpi(1, S5, StEof);
    a.bc(isa::Cond::EQ, 1, "eof");
    a.b("charloop");

    a.label("lineend");
    // Associative-array update: find the tag's cell in its bucket
    // chain (pointer loads: the chain never changes) and add value.
    a.andi(T0, S7, 7); // bucket = first char & 7
    a.sldi(T0, T0, 3);
    a.add(T0, T0, S4);
    a.ld(T1, 0, T0, isa::DataClass::DataAddr); // bucket head
    a.label("chase");
    a.cmpi(1, T1, 0);
    a.bc(isa::Cond::EQ, 1, "nextline"); // tag not present: drop
    a.ld(T2, 0, T1); // cell tag char (constant)
    a.cmp(1, T2, S7);
    a.bc(isa::Cond::EQ, 1, "found");
    a.ld(T1, 16, T1, isa::DataClass::DataAddr); // next cell (constant)
    a.b("chase");
    a.label("found");
    a.ld(T2, 8, T1); // running sum
    a.add(T2, T2, S6);
    a.std_(T2, 8, T1);
    a.addi(S3, S3, 1);

    a.label("nextline");
    a.b("lineloop");

    a.label("eof");
    // result = sum over all cells + (lines << 40)
    a.li(T0, 0); // cell index
    a.li(S6, 0); // total
    b.loadAddr(S5, "cells");
    a.label("sumloop");
    a.li(T1, 24);
    a.mull(T1, T0, T1);
    a.add(T1, T1, S5);
    a.ld(T2, 8, T1);
    a.add(S6, S6, T2);
    a.addi(T0, T0, 1);
    a.cmpi(0, T0, 6);
    a.bc(isa::Cond::LT, 0, "sumloop");
    a.sldi(T1, S3, 40);
    a.add(S6, S6, T1);
    b.loadAddr(T0, "__result");
    a.std_(S6, 0, T0);
    a.halt();

    isa::Program prog = b.finish();

    // Build the bucket chains: cells keyed by each tag's first char.
    Addr chain_head[8] = {};
    for (int i = 5; i >= 0; --i) { // reverse: heads end up in order
        auto first = static_cast<std::uint8_t>(tags[i][0]);
        unsigned bkt = first & 7;
        Addr cell = cells + static_cast<Addr>(i) * 24;
        prog.setWord(cell + 0, first);
        prog.setWord(cell + 8, 0);
        prog.setWord(cell + 16, chain_head[bkt]);
        chain_head[bkt] = cell;
    }
    for (unsigned bkt = 0; bkt < 8; ++bkt)
        prog.setWord(buckets + bkt * 8, chain_head[bkt]);
    return prog;
}

} // namespace lvplib::workloads

/**
 * @file
 * "sc" workload: a spreadsheet recalculation engine. Each cell holds
 * a function pointer (its formula) and argument cell indices; the
 * recalc loop calls every cell's formula indirectly (the paper runs
 * the sc spreadsheet on a SPEC92 input).
 *
 * Value-locality sources: the per-cell function-pointer and argument
 * loads never change between recalc passes (virtual-function-call
 * idiom, instruction- and data-address loads); most cell VALUES also
 * stabilize after a few passes.
 */

#include "workloads/common.hh"

#include "util/rng.hh"

namespace lvplib::workloads
{

isa::Program
buildSc(CodeGen cg, unsigned scale)
{
    using namespace regs;
    Builder b(cg);
    isa::Assembler &a = b.a();

    constexpr unsigned Rows = 16;
    constexpr unsigned Cols = 8;
    constexpr unsigned Cells = Rows * Cols;
    const unsigned passes = 6 * scale;

    // ---- data ----------------------------------------------------------
    // Cell record (32 bytes): {fnptr, arg1 index, arg2 index, value}.
    a.dataLabel("__result");
    a.dspace(8);
    a.dalign(8);
    Addr sheet = a.dataLabel("sheet");
    a.dspace(Cells * 32);
    a.dataLabel("recalcmode"); // run-time configuration flag
    a.dd(1);

    // ---- main ------------------------------------------------------------
    // S5 sheet base, S6 pass counter, S7 cell index.
    b.loadAddr(S5, "sheet");
    b.loadAddr(S0, "recalcmode");
    a.li(S6, 0);
    b.loadConst(S4, "passes", passes);

    a.label("pass");
    a.li(S7, 0);
    a.label("cellloop");
    // Check the recalc-mode configuration flag: an error-checking
    // load of a run-time constant (it is never 0 in practice).
    a.ld(T1, 0, S0);
    a.cmpi(1, T1, 0);
    a.bc(isa::Cond::EQ, 1, "skipcell");
    a.sldi(T0, S7, 5);
    a.add(S3, T0, S5); // &cell in S3 (callee-saved: formulas preserve)
    // formula pointer: an instruction-address load, constant per cell
    a.ld(T0, 0, S3, isa::DataClass::InstAddr);
    a.mr(A0, S3);
    b.callIndirect(T0); // formula(cell) -> new value in A0
    a.std_(A0, 24, S3);
    a.label("skipcell");
    a.addi(S7, S7, 1);
    a.cmpi(0, S7, Cells);
    a.bc(isa::Cond::LT, 0, "cellloop");
    a.addi(S6, S6, 1);
    a.cmp(0, S6, S4);
    a.bc(isa::Cond::LT, 0, "pass");

    // checksum: sum of all cell values
    a.li(T0, 0);
    a.li(T1, 0);
    a.label("ck");
    a.sldi(T2, T1, 5);
    a.add(T2, T2, S5);
    a.ld(T2, 24, T2);
    a.add(T0, T0, T2);
    a.addi(T1, T1, 1);
    a.cmpi(0, T1, Cells);
    a.bc(isa::Cond::LT, 0, "ck");
    b.loadAddr(T1, "__result");
    a.std_(T0, 0, T1);
    a.halt();

    // ---- formulas: cell ptr in A0, return new value in A0 ----------
    // fnConst: value stays as initialized.
    a.label("fnConst");
    a.ld(A0, 24, A0);
    a.blr();

    // fnSum: value = cells[arg1].value + cells[arg2].value
    a.label("fnSum");
    a.ld(T1, 8, A0);  // arg1 index (constant)
    a.ld(T2, 16, A0); // arg2 index (constant)
    a.sldi(T1, T1, 5);
    a.add(T1, T1, S5);
    a.ld(T1, 24, T1);
    a.sldi(T2, T2, 5);
    a.add(T2, T2, S5);
    a.ld(T2, 24, T2);
    a.add(A0, T1, T2);
    a.blr();

    // fnAvg: value = (cells[arg1].value + cells[arg2].value) / 2
    a.label("fnAvg");
    a.ld(T1, 8, A0);
    a.ld(T2, 16, A0);
    a.sldi(T1, T1, 5);
    a.add(T1, T1, S5);
    a.ld(T1, 24, T1);
    a.sldi(T2, T2, 5);
    a.add(T2, T2, S5);
    a.ld(T2, 24, T2);
    a.add(A0, T1, T2);
    a.sradi(A0, A0, 1);
    a.blr();

    // fnCount: value = value + 1 (a running counter cell)
    a.label("fnCount");
    a.ld(A0, 24, A0);
    a.addi(A0, A0, 1);
    a.blr();

    isa::Program prog = b.finish();

    // Populate the sheet now that formula addresses are known.
    Rng rng(0x73636363);
    const Addr fns[4] = {prog.symbol("fnConst"), prog.symbol("fnSum"),
                         prog.symbol("fnAvg"), prog.symbol("fnCount")};
    for (unsigned i = 0; i < Cells; ++i) {
        Addr at = sheet + static_cast<Addr>(i) * 32;
        // First row: literal cells; below it, mostly SUM formulas
        // (real sheets repeat one formula down a column).
        unsigned roll = static_cast<unsigned>(rng.below(100));
        unsigned kind = i < Cols ? 0
                        : roll < 70 ? 1
                        : roll < 80 ? 2
                        : roll < 95 ? 0
                                    : 3;
        // Formula args reference cells in earlier rows only.
        Word arg1 = i < Cols ? 0 : rng.below(i);
        Word arg2 = i < Cols ? 0 : rng.below(i);
        prog.setWord(at + 0, fns[kind]);
        prog.setWord(at + 8, arg1);
        prog.setWord(at + 16, arg2);
        prog.setWord(at + 24, rng.below(1000));
    }
    return prog;
}

} // namespace lvplib::workloads

/**
 * @file
 * "mpeg" workload: video decoding with fast dithering — reconstruct
 * pixels from a reference frame plus a delta stream, then dither
 * through small lookup tables (the paper decodes 4 frames with fast
 * dithering).
 *
 * Value-locality sources: the dither and clamp tables are small and
 * constant (their loads dominate and hit near-100%); reference-frame
 * pixels are quantized to few levels (moderate locality); only the
 * delta-stream loads vary. The paper measures mpeg around 75-90%.
 */

#include "workloads/common.hh"

#include "util/rng.hh"

namespace lvplib::workloads
{

isa::Program
buildMpeg(CodeGen cg, unsigned scale)
{
    using namespace regs;
    Builder b(cg);
    isa::Assembler &a = b.a();

    const std::size_t frame_pixels = 512;
    const unsigned frames = 4 * scale;

    // ---- data -----------------------------------------------------------
    a.dataLabel("__result");
    a.dspace(8);
    a.dataLabel("dither"); // 16-entry dither kernel
    for (unsigned i = 0; i < 16; ++i)
        a.db(static_cast<std::uint8_t>((i * 17) & 0x3f));
    a.dataLabel("clamp"); // 64-entry clamp/gamma table
    for (unsigned i = 0; i < 64; ++i)
        a.db(static_cast<std::uint8_t>(i < 48 ? i * 5 : 239 + (i - 48)));
    a.dataLabel("ref"); // reference frame: flat runs, as real images
    Rng rng(0x6d706567);
    {
        std::size_t i = 0;
        while (i < frame_pixels) {
            auto val = static_cast<std::uint8_t>(rng.below(8) * 32);
            std::size_t run = 4 + rng.below(13);
            for (std::size_t k = 0; k < run && i < frame_pixels;
                 ++k, ++i)
                a.db(val);
        }
    }
    a.dataLabel("deltas"); // inter-frame deltas: mostly zero
    for (std::size_t i = 0; i < frame_pixels; ++i)
        a.db(rng.chance(85, 100)
                 ? 0
                 : static_cast<std::uint8_t>(rng.below(16)));
    a.dataLabel("out");
    a.dspace(frame_pixels);

    // ---- code ----------------------------------------------------------
    // S0 ref, S1 deltas, S2 dither, S3 clamp, S4 out, S5 frame ctr,
    // S6 checksum.
    b.loadAddr(S0, "ref");
    b.loadAddr(S1, "deltas");
    b.loadAddr(S2, "dither");
    b.loadAddr(S3, "clamp");
    b.loadAddr(S4, "out");
    a.li(S5, 0);
    a.li(S6, 0);

    a.label("frame");
    a.li(S7, 0); // pixel index
    a.label("pixel");
    // ref pixel (8 distinct values: decent locality)
    a.add(T0, S0, S7);
    a.lbz(T0, 0, T0);
    // delta (varies per pixel, rotated per frame via the index mix)
    a.add(T1, S7, S5);
    a.andi(T1, T1, frame_pixels - 1);
    a.add(T1, S1, T1);
    a.lbz(T1, 0, T1);
    // dither kernel entry: row-based, so the index is stable for a
    // 16-pixel row (fast dithering reuses one kernel row at a time)
    a.srdi(T2, S7, 4);
    a.andi(T2, T2, 15);
    a.add(T2, S2, T2);
    a.lbz(T2, 0, T2);
    // combined = (ref + delta + dither) >> 2, clamped via table
    a.add(T0, T0, T1);
    a.add(T0, T0, T2);
    a.srdi(T0, T0, 2);
    a.andi(T0, T0, 63);
    a.add(T0, S3, T0);
    a.lbz(T0, 0, T0); // clamp table (constant)
    // store and checksum
    a.add(T1, S4, S7);
    a.stb(T0, 0, T1);
    a.add(S6, S6, T0);
    a.addi(S7, S7, 1);
    a.cmpi(0, S7, frame_pixels);
    a.bc(isa::Cond::LT, 0, "pixel");
    a.addi(S5, S5, 1);
    a.cmpi(0, S5, static_cast<std::int64_t>(frames));
    a.bc(isa::Cond::LT, 0, "frame");

    b.loadAddr(T0, "__result");
    a.std_(S6, 0, T0);
    a.halt();

    return b.finish();
}

} // namespace lvplib::workloads

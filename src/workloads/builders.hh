/**
 * @file
 * Forward declarations of the per-benchmark program builders. Only
 * the registry includes this; users go through allWorkloads().
 */

#ifndef LVPLIB_WORKLOADS_BUILDERS_HH
#define LVPLIB_WORKLOADS_BUILDERS_HH

#include "workloads/workload.hh"

namespace lvplib::workloads
{

isa::Program buildCc1(CodeGen cg, unsigned scale);
isa::Program buildCjpeg(CodeGen cg, unsigned scale);
isa::Program buildCompress(CodeGen cg, unsigned scale);
isa::Program buildDoduc(CodeGen cg, unsigned scale);
isa::Program buildEqntott(CodeGen cg, unsigned scale);
isa::Program buildGawk(CodeGen cg, unsigned scale);
isa::Program buildGperf(CodeGen cg, unsigned scale);
isa::Program buildGrep(CodeGen cg, unsigned scale);
isa::Program buildHydro2d(CodeGen cg, unsigned scale);
isa::Program buildMpeg(CodeGen cg, unsigned scale);
isa::Program buildPerl(CodeGen cg, unsigned scale);
isa::Program buildQuick(CodeGen cg, unsigned scale);
isa::Program buildSc(CodeGen cg, unsigned scale);
isa::Program buildSwm256(CodeGen cg, unsigned scale);
isa::Program buildTomcatv(CodeGen cg, unsigned scale);
isa::Program buildXlisp(CodeGen cg, unsigned scale);

} // namespace lvplib::workloads

#endif // LVPLIB_WORKLOADS_BUILDERS_HH

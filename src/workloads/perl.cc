/**
 * @file
 * "perl" workload: anagram search — find all words in a dictionary
 * that are anagrams of a target word (the paper runs the SPEC95
 * anagram-search perl script for "admits").
 *
 * Value-locality sources: the target word's letter-count signature is
 * reloaded for every candidate word (run-time constants), and the
 * per-word signature buffer mostly holds zeros (data redundancy).
 */

#include "workloads/common.hh"

#include "util/rng.hh"

namespace lvplib::workloads
{

isa::Program
buildPerl(CodeGen cg, unsigned scale)
{
    using namespace regs;
    Builder b(cg);
    isa::Assembler &a = b.a();

    const std::string target = "admits";
    const unsigned words = 40;
    const unsigned sweeps = 3 * scale;

    // ---- data ---------------------------------------------------------
    a.dataLabel("__result");
    a.dspace(8);
    a.dalign(8);
    a.dataLabel("targetsig"); // 26 letter counts of the target
    {
        unsigned counts[26] = {};
        for (char c : target)
            ++counts[c - 'a'];
        for (unsigned c : counts)
            a.dd(c);
    }
    a.dataLabel("wordsig"); // scratch signature
    a.dspace(26 * 8);
    // Dictionary: fixed-width 16-byte word slots, some anagrams of
    // the target planted.
    a.dataLabel("dict");
    Rng rng(0x7065726c);
    static const char *const anagrams[] = {"admits", "amidst", "tsmida"};
    for (unsigned i = 0; i < words; ++i) {
        std::string w;
        if (i % 13 == 5) {
            w = anagrams[rng.below(3)];
        } else {
            unsigned len = 3 + static_cast<unsigned>(rng.below(10));
            for (unsigned k = 0; k < len; ++k)
                w.push_back(static_cast<char>('a' + rng.below(26)));
        }
        for (unsigned k = 0; k < 15; ++k)
            a.db(k < w.size() ? static_cast<std::uint8_t>(w[k]) : 0);
        a.db(0);
    }

    // ---- code -----------------------------------------------------------
    // S0 dict base, S1 targetsig, S2 wordsig, S3 match count,
    // S4 sweep counter, S5 word index.
    b.loadAddr(S0, "dict");
    b.loadAddr(S1, "targetsig");
    b.loadAddr(S2, "wordsig");
    a.li(S3, 0);
    a.li(S4, 0);

    a.label("sweep");
    a.li(S5, 0);
    a.label("wordloop");
    // clear the scratch signature (mostly redundant stores)
    a.li(T0, 0);
    a.label("clearsig");
    a.sldi(T1, T0, 3);
    a.add(T1, T1, S2);
    a.std_(0, 0, T1);
    a.addi(T0, T0, 1);
    a.cmpi(0, T0, 26);
    a.bc(isa::Cond::LT, 0, "clearsig");
    // count the word's letters
    a.sldi(T0, S5, 4);
    a.add(S6, T0, S0); // word ptr
    a.label("countloop");
    a.lbz(T0, 0, S6);
    a.cmpi(0, T0, 0);
    a.bc(isa::Cond::EQ, 0, "compare");
    a.addi(T0, T0, -'a');
    a.sldi(T0, T0, 3);
    a.add(T0, T0, S2);
    a.ld(T1, 0, T0);
    a.addi(T1, T1, 1);
    a.std_(T1, 0, T0);
    a.addi(S6, S6, 1);
    a.b("countloop");
    // compare the signatures
    a.label("compare");
    a.li(T0, 0);
    a.label("cmploop");
    a.sldi(T1, T0, 3);
    a.add(T2, T1, S1);
    a.ld(T2, 0, T2); // target count: run-time constant
    a.add(A0, T1, S2);
    a.ld(A0, 0, A0); // word count: mostly zero
    a.cmp(0, T2, A0);
    a.bc(isa::Cond::NE, 0, "nextword");
    a.addi(T0, T0, 1);
    a.cmpi(0, T0, 26);
    a.bc(isa::Cond::LT, 0, "cmploop");
    a.addi(S3, S3, 1); // anagram found

    a.label("nextword");
    a.addi(S5, S5, 1);
    a.cmpi(0, S5, words);
    a.bc(isa::Cond::LT, 0, "wordloop");
    a.addi(S4, S4, 1);
    a.cmpi(0, S4, static_cast<std::int64_t>(sweeps));
    a.bc(isa::Cond::LT, 0, "sweep");

    b.loadAddr(T0, "__result");
    a.std_(S3, 0, T0);
    a.halt();

    return b.finish();
}

} // namespace lvplib::workloads
